//! The transport-agnostic online query engine.
//!
//! A [`Service`] owns three cooperating pieces:
//!
//! * a *master* copy of the mutable state (graph, pending edge
//!   changes, [`DynamicLandmarks`] staleness accounting) behind one
//!   mutex that **no query ever takes** — queries only read published
//!   [`Snapshot`]s;
//! * the [`SnapshotStore`] publishing the current immutable snapshot;
//! * the [`ResultCache`] and the micro-batching queue.
//!
//! Determinism contract: [`Service::call`], [`Service::call_many`] and
//! the `submit`/`pump` pair produce byte-identical recommendation
//! lists — and identical `service.*` counter deltas — at any
//! `FUI_THREADS` width, because the only parallel step
//! (`recommend_batch`) reduces in index order. The conformance
//! invariant `check_cached_matches_uncached` and the `serve_micro` CI
//! gate both lean on this.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant, SimRowCache};
use fui_graph::{NodeId, SocialGraph};
use fui_landmarks::{ApproxRecommender, DynamicLandmarks, EdgeChange, LandmarkIndex};
use fui_obs::{
    Counter, Hist, LatencyParts, RequestTrace, SloConfig, SloReport, SloTracker, TraceCapture,
    TraceEventKind, TraceOutcome,
};
use fui_taxonomy::{SimMatrix, Topic};

use crate::batch::{trace_meta, Batcher, Pending, Ticket};
use crate::cache::{CacheKey, CacheStamp, ResultCache};
use crate::snapshot::{apply_changes, Snapshot, SnapshotStore};

/// One "who should I follow" query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// The querying user.
    pub user: NodeId,
    /// Topic of interest.
    pub topic: Topic,
    /// Requested list length.
    pub top_n: usize,
}

/// A successfully answered request.
#[derive(Clone, Debug)]
pub struct Served {
    /// Top-n recommendations, best first (shared with the cache).
    pub recommendations: Arc<Vec<(NodeId, f64)>>,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the answer came out of the result cache.
    pub cached: bool,
}

/// Outcome of a request — every accepted request gets exactly one.
#[derive(Clone, Debug)]
pub enum Reply {
    /// The recommendations.
    Result(Served),
    /// Shed by admission control or a missed deadline; retry later.
    Overloaded,
    /// Malformed request (unknown user, zero top_n, ...).
    Rejected(String),
}

/// Tuning knobs; [`ServiceConfig::default`] suits tests and benches.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Max requests coalesced into one `recommend_batch` call.
    pub max_batch: usize,
    /// Admission-control bound on the submission queue.
    pub queue_capacity: usize,
    /// Total result-cache entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Landmark staleness threshold (see [`DynamicLandmarks`]).
    pub refresh_threshold: f64,
    /// Background impact per change (see [`DynamicLandmarks`]).
    pub background_impact: f64,
    /// Exploration depth of the approximate recommender.
    pub explore_depth: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_batch: 64,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            refresh_threshold: 0.1,
            background_impact: 1e-9,
            explore_depth: 2,
        }
    }
}

/// Mutable master state — mutations lock this, queries never do.
struct Master {
    graph: Arc<SocialGraph>,
    authority: Arc<AuthorityIndex>,
    sim_rows: Arc<SimRowCache>,
    index: Arc<LandmarkIndex>,
    sim: SimMatrix,
    dynamic: DynamicLandmarks,
    pending: Vec<EdgeChange>,
    epoch: u64,
    graph_gen: u64,
    slot_versions: Vec<u64>,
    params: ScoreParams,
    variant: ScoreVariant,
}

impl Master {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            epoch: self.epoch,
            graph_gen: self.graph_gen,
            slot_versions: self.slot_versions.clone(),
            graph: Arc::clone(&self.graph),
            authority: Arc::clone(&self.authority),
            sim_rows: Arc::clone(&self.sim_rows),
            index: Arc::clone(&self.index),
            params: self.params,
            variant: self.variant,
        }
    }
}

/// `service.*` handles resolved once at construction — the request
/// hot path never takes the registry's name-lookup lock.
struct ServiceMetrics {
    requests: Counter,
    shed: Counter,
    shed_deadline: Counter,
    rotations: Counter,
    batch_size: Hist,
    request_latency: Hist,
    slo: SloTracker,
}

impl ServiceMetrics {
    fn new() -> ServiceMetrics {
        let requests = fui_obs::counter("service.requests");
        let shed = fui_obs::counter("service.shed");
        let request_latency = fui_obs::hist("service.request_latency");
        ServiceMetrics {
            requests,
            shed,
            shed_deadline: fui_obs::counter("service.shed.deadline"),
            rotations: fui_obs::counter("service.snapshot.rotations"),
            batch_size: fui_obs::hist("service.batch.size"),
            request_latency,
            slo: SloTracker::new(SloConfig::from_env(), request_latency, requests, shed),
        }
    }
}

/// The online serving engine. See the module docs.
pub struct Service {
    master: Mutex<Master>,
    store: SnapshotStore,
    cache: ResultCache,
    batcher: Batcher,
    cfg: ServiceConfig,
    metrics: ServiceMetrics,
}

impl Service {
    /// Builds a service over `graph`: authority index, similarity
    /// rows and the landmark index are precomputed here (the landmark
    /// build fans out over the `fui-exec` pool), then published as
    /// epoch-0 snapshot.
    pub fn new(
        graph: SocialGraph,
        sim: SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
        landmarks: Vec<NodeId>,
        stored_top_n: usize,
        cfg: ServiceConfig,
    ) -> Service {
        let graph = Arc::new(graph);
        let authority = Arc::new(AuthorityIndex::build(&graph));
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        let propagator =
            Propagator::with_sim_cache(&graph, &authority, Arc::clone(&sim_rows), params, variant);
        let index = LandmarkIndex::build_auto(&propagator, landmarks, stored_top_n);
        let dynamic = DynamicLandmarks::with_policy(
            index.clone(),
            cfg.refresh_threshold,
            cfg.background_impact,
        );
        let index = Arc::new(index);
        let slots = index.len();
        let master = Master {
            graph,
            authority,
            sim_rows,
            index,
            sim,
            dynamic,
            pending: Vec::new(),
            epoch: 0,
            graph_gen: 0,
            slot_versions: vec![0; slots],
            params,
            variant,
        };
        let store = SnapshotStore::new(master.snapshot());
        let metrics = ServiceMetrics::new();
        let batcher = Batcher::new(
            cfg.queue_capacity,
            metrics.shed,
            fui_obs::counter("service.shed.queue_full"),
            fui_obs::counter("service.shed.disconnect"),
        );
        Service {
            master: Mutex::new(master),
            store,
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            batcher,
            cfg,
            metrics,
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.load()
    }

    /// Live result-cache entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    // ---- read path -----------------------------------------------

    /// Answers one request synchronously (cache → batch of one).
    pub fn call(&self, req: Request) -> Reply {
        self.call_many(std::slice::from_ref(&req))
            .pop()
            .expect("one reply per request")
    }

    /// Answers a slice of requests synchronously, coalescing them into
    /// `max_batch`-sized batches. Replies come back in request order.
    pub fn call_many(&self, reqs: &[Request]) -> Vec<Reply> {
        let mut replies = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(self.cfg.max_batch.max(1)) {
            let traces = chunk.iter().map(|_| TraceCapture::begin()).collect();
            replies.extend(self.answer_batch(chunk, traces));
        }
        replies
    }

    /// Enqueues a request for the next [`pump`](Self::pump), shedding
    /// immediately if the queue is at capacity. `deadline` (if any) is
    /// checked when the pump drains the request. When tracing is
    /// active the request draws a [`fui_obs::TraceId`] here, at
    /// admission, so queue wait is attributed from the moment of
    /// submission.
    pub fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        self.batcher.submit(req, deadline, TraceCapture::begin())
    }

    /// Drains and answers one batch from the submission queue;
    /// returns how many requests it resolved (answered or shed).
    /// Callers drive this: tests and benches call it synchronously
    /// for determinism, the net frontend calls it on a window timer.
    pub fn pump(&self) -> usize {
        let drained = self.batcher.drain(self.cfg.max_batch);
        if drained.is_empty() {
            return 0;
        }
        let now = Instant::now();
        let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
        for p in drained {
            if p.deadline.is_some_and(|d| now > d) {
                self.metrics.shed.incr();
                self.metrics.shed_deadline.incr();
                if let Some(cap) = p.trace {
                    let queue_ns =
                        u64::try_from(now.saturating_duration_since(cap.started_at()).as_nanos())
                            .unwrap_or(u64::MAX);
                    cap.finish(
                        trace_meta(&p.req),
                        TraceOutcome::ShedDeadline,
                        LatencyParts {
                            queue_ns,
                            ..LatencyParts::default()
                        },
                    );
                }
                let _ = p.tx.send(Reply::Overloaded);
            } else {
                live.push(p);
            }
        }
        let total = live.len();
        if total == 0 {
            return total;
        }
        let reqs: Vec<Request> = live.iter().map(|p| p.req).collect();
        let traces = live.iter_mut().map(|p| p.trace.take()).collect();
        let replies = self.answer_batch(&reqs, traces);
        for (p, reply) in live.into_iter().zip(replies) {
            let _ = p.tx.send(reply);
        }
        total
    }

    /// Answers one batch against the currently published snapshot:
    /// probe the cache, group the misses by `top_n`, fan each group
    /// out through `recommend_batch`, stamp and cache the results.
    ///
    /// `traces` runs parallel to `reqs`. A traced request's latency
    /// decomposition is queue wait (submission → batch entry, exact
    /// per request) plus the batch's shared cache / compute / assembly
    /// segments — the batch answers as a unit, so every member's
    /// end-to-end latency covers the whole batch, and the four parts
    /// sum to the recorded total *exactly* (assembly is defined as the
    /// remainder).
    fn answer_batch(&self, reqs: &[Request], traces: Vec<Option<TraceCapture>>) -> Vec<Reply> {
        let started = Instant::now();
        let _span = fui_obs::span!("service.request");
        let snap = self.store.load();
        self.metrics.requests.add(reqs.len() as u64);
        self.metrics.batch_size.record(reqs.len() as u64);

        let mut traces = traces;
        let tracing = traces.iter().any(Option::is_some);
        if tracing {
            for cap in traces.iter_mut().flatten() {
                cap.event(TraceEventKind::BatchJoin, reqs.len() as u64);
                cap.event(TraceEventKind::SnapshotPin, snap.epoch);
            }
        }
        // Timed sub-segments, accumulated only when tracing (the
        // untraced path takes no extra clock reads).
        let mut cache_ns = 0u64;
        let mut compute_ns = 0u64;
        let clock = |on: bool| if on { Some(Instant::now()) } else { None };
        let lap = |t0: Option<Instant>, acc: &mut u64| {
            if let Some(t0) = t0 {
                *acc += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        };

        let mut replies: Vec<Option<Reply>> = (0..reqs.len()).map(|_| None).collect();
        // Miss indices per top_n — BTreeMap so group order (and hence
        // batch composition and counters) is deterministic.
        let mut misses: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, req) in reqs.iter().enumerate() {
            if let Err(why) = validate(req, &snap) {
                replies[i] = Some(Reply::Rejected(why));
                continue;
            }
            let key = key_of(req);
            let t0 = clock(tracing);
            let probed = self.cache.get(key, &snap);
            lap(t0, &mut cache_ns);
            if let Some(cap) = traces[i].as_mut() {
                cap.event(TraceEventKind::CacheProbe, u64::from(probed.is_some()));
            }
            if let Some(value) = probed {
                replies[i] = Some(Reply::Result(Served {
                    recommendations: value,
                    epoch: snap.epoch,
                    cached: true,
                }));
            } else {
                misses.entry(req.top_n).or_default().push(i);
            }
        }

        if misses.values().any(|v| !v.is_empty()) {
            let propagator = snap.propagator();
            let mut rec = ApproxRecommender::new(&propagator, &snap.index);
            rec.explore_depth = self.cfg.explore_depth;
            for (top_n, idxs) in &misses {
                let queries: Vec<(NodeId, Topic)> = idxs
                    .iter()
                    .map(|&i| (reqs[i].user, reqs[i].topic))
                    .collect();
                if tracing {
                    for &i in idxs {
                        if let Some(cap) = traces[i].as_mut() {
                            cap.event(TraceEventKind::PropagateStart, idxs.len() as u64);
                        }
                    }
                }
                let t0 = clock(tracing);
                let results = rec.recommend_batch(&queries, *top_n);
                lap(t0, &mut compute_ns);
                let t0 = clock(tracing);
                for (&i, result) in idxs.iter().zip(results) {
                    let met: Vec<(u32, u64)> = result
                        .met_landmarks
                        .iter()
                        .map(|&l| {
                            let slot = snap.index.slot_of(l).expect("met node is a landmark");
                            (slot, snap.slot_versions[slot as usize])
                        })
                        .collect();
                    let value = Arc::new(result.recommendations);
                    self.cache.insert(
                        key_of(&reqs[i]),
                        Arc::clone(&value),
                        CacheStamp {
                            graph_gen: snap.graph_gen,
                            met,
                        },
                    );
                    replies[i] = Some(Reply::Result(Served {
                        recommendations: value,
                        epoch: snap.epoch,
                        cached: false,
                    }));
                }
                lap(t0, &mut cache_ns);
            }
        }

        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        for _ in reqs {
            self.metrics.request_latency.record(elapsed);
        }
        if tracing {
            let assembly_ns = elapsed.saturating_sub(cache_ns).saturating_sub(compute_ns);
            for (i, cap) in traces.into_iter().enumerate() {
                let Some(cap) = cap else { continue };
                let outcome = match replies[i].as_ref() {
                    Some(Reply::Result(s)) if s.cached => TraceOutcome::OkCached,
                    Some(Reply::Result(_)) => TraceOutcome::Ok,
                    _ => TraceOutcome::Rejected,
                };
                let queue_ns = u64::try_from(
                    started
                        .saturating_duration_since(cap.started_at())
                        .as_nanos(),
                )
                .unwrap_or(u64::MAX);
                cap.finish(
                    trace_meta(&reqs[i]),
                    outcome,
                    LatencyParts {
                        queue_ns,
                        assembly_ns,
                        compute_ns,
                        cache_ns,
                    },
                );
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    // ---- write path ----------------------------------------------

    /// Records one follow/unfollow. The change is buffered until the
    /// next [`rotate`](Self::rotate); staleness is charged to the
    /// landmarks immediately, and any landmark the charge pushes past
    /// its threshold gets its cache version bumped right away (a new
    /// epoch is published so probes see it), conservatively retiring
    /// cached results that composed through the now-suspect entry.
    pub fn record(&self, change: EdgeChange) -> Result<(), String> {
        let mut m = self.master.lock().expect("master poisoned");
        let n = m.graph.num_nodes() as u32;
        if change.follower.0 >= n || change.followee.0 >= n {
            return Err(format!("edge endpoints out of range (graph has {n} nodes)"));
        }
        if change.follower == change.followee {
            return Err("self-follows are not representable".to_owned());
        }
        let slots = m.dynamic.index().len();
        let was: Vec<bool> = (0..slots).map(|s| m.dynamic.is_stale(s)).collect();
        m.dynamic.record(&change);
        m.pending.push(change);
        let newly: Vec<usize> = (0..slots)
            .filter(|&s| !was[s] && m.dynamic.is_stale(s))
            .collect();
        if !newly.is_empty() {
            for s in newly {
                m.slot_versions[s] += 1;
            }
            m.epoch += 1;
            self.store.publish(m.snapshot());
        }
        Ok(())
    }

    /// Number of changes recorded but not yet rotated in.
    pub fn pending_changes(&self) -> usize {
        self.master.lock().expect("master poisoned").pending.len()
    }

    /// Applies all pending edge changes: rebuilds graph, authority
    /// index and similarity rows, bumps `graph_gen` (retiring every
    /// cached result) and publishes. Landmark entries are *not*
    /// recomputed — the lazy policy keeps serving slightly stale lists
    /// until [`refresh`](Self::refresh), exactly the trade-off the
    /// paper anticipates for churning follow graphs. Never blocks
    /// in-flight queries; they finish on their old snapshot. Returns
    /// the new epoch.
    pub fn rotate(&self) -> u64 {
        let _span = fui_obs::span!("service.rotate");
        let mut m = self.master.lock().expect("master poisoned");
        self.metrics.rotations.incr();
        if !m.pending.is_empty() {
            let next = apply_changes(&m.graph, &m.pending);
            m.pending.clear();
            m.graph = Arc::new(next);
            m.authority = Arc::new(AuthorityIndex::build(&m.graph));
            m.sim_rows = Arc::new(SimRowCache::build(&m.graph, &m.sim));
        }
        m.graph_gen += 1;
        m.epoch += 1;
        self.store.publish(m.snapshot());
        m.epoch
    }

    /// Recomputes every stale landmark against the current graph and
    /// publishes the refreshed index under a new epoch, bumping the
    /// refreshed slots' cache versions (results that never met those
    /// landmarks keep their cache entries). Returns how many entries
    /// were refreshed.
    pub fn refresh(&self) -> usize {
        let _span = fui_obs::span!("service.refresh");
        let mut guard = self.master.lock().expect("master poisoned");
        let m = &mut *guard;
        let stale = m.dynamic.stale_slots();
        if stale.is_empty() {
            return 0;
        }
        let propagator = Propagator::with_sim_cache(
            &m.graph,
            &m.authority,
            Arc::clone(&m.sim_rows),
            m.params,
            m.variant,
        );
        let refreshed = m.dynamic.refresh_stale(&propagator);
        for &s in &stale {
            m.slot_versions[s] += 1;
        }
        m.index = Arc::new(m.dynamic.index().clone());
        m.epoch += 1;
        self.store.publish(m.snapshot());
        refreshed
    }

    // ---- introspection -------------------------------------------

    /// Takes an SLO checkpoint and reports current burn rates over the
    /// rolling window (latency arm: `service.request_latency` against
    /// the p99 target; shed arm: `service.shed` against the ceiling —
    /// see [`fui_obs::slo`]).
    pub fn slo(&self) -> SloReport {
        self.metrics.slo.observe()
    }

    /// The `n` slowest recently traced requests, slowest first (empty
    /// unless tracing is active — see [`fui_obs::trace`]).
    pub fn trace_slowest(&self, n: usize) -> Vec<RequestTrace> {
        fui_obs::trace::slowest(n)
    }
}

fn key_of(req: &Request) -> CacheKey {
    CacheKey {
        user: req.user.0,
        topic: req.topic.index() as u8,
        top_n: u32::try_from(req.top_n).unwrap_or(u32::MAX),
    }
}

fn validate(req: &Request, snap: &Snapshot) -> Result<(), String> {
    if req.user.index() >= snap.graph.num_nodes() {
        return Err(format!(
            "unknown user {} (graph has {} nodes)",
            req.user.0,
            snap.graph.num_nodes()
        ));
    }
    if req.top_n == 0 {
        return Err("top_n must be at least 1".to_owned());
    }
    Ok(())
}
