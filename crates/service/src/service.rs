//! The transport-agnostic online query engine.
//!
//! A [`Service`] owns three cooperating pieces:
//!
//! * a *master* copy of the mutable state (graph, pending edge
//!   changes, [`DynamicLandmarks`] staleness accounting) behind one
//!   mutex that **no query ever takes** — queries only read published
//!   [`Snapshot`]s;
//! * the [`SnapshotStore`] publishing the current immutable snapshot;
//! * the [`ResultCache`] and the micro-batching queue.
//!
//! Determinism contract: [`Service::call`], [`Service::call_many`] and
//! the `submit`/`pump` pair produce byte-identical recommendation
//! lists — and identical `service.*` counter deltas — at any
//! `FUI_THREADS` width, because the only parallel step
//! (`recommend_batch`) reduces in index order. The conformance
//! invariant `check_cached_matches_uncached` and the `serve_micro` CI
//! gate both lean on this.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant, SimRowCache};
use fui_graph::{NodeId, SocialGraph};
use fui_landmarks::{ApproxRecommender, DynamicLandmarks, EdgeChange, LandmarkIndex};
use fui_obs::{
    Counter, Hist, LatencyParts, RequestTrace, SloConfig, SloReport, SloTracker, TraceCapture,
    TraceEventKind, TraceOutcome,
};
use fui_taxonomy::{SimMatrix, Topic};

use crate::batch::{trace_meta, Batcher, Pending, Ticket};
use crate::cache::{CacheKey, CacheStamp, ResultCache};
use crate::durable::{self, JournalOp, JournalRecord, SnapshotState};
use crate::snapshot::{apply_changes, Snapshot, SnapshotStore};

/// One "who should I follow" query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// The querying user.
    pub user: NodeId,
    /// Topic of interest.
    pub topic: Topic,
    /// Requested list length.
    pub top_n: usize,
}

/// A successfully answered request.
#[derive(Clone, Debug)]
pub struct Served {
    /// Top-n recommendations, best first (shared with the cache).
    pub recommendations: Arc<Vec<(NodeId, f64)>>,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the answer came out of the result cache.
    pub cached: bool,
}

/// Outcome of a request — every accepted request gets exactly one.
#[derive(Clone, Debug)]
pub enum Reply {
    /// The recommendations.
    Result(Served),
    /// Shed by admission control or a missed deadline; retry later.
    Overloaded,
    /// Malformed request (unknown user, zero top_n, ...).
    Rejected(String),
}

/// Tuning knobs; [`ServiceConfig::default`] suits tests and benches.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Max requests coalesced into one `recommend_batch` call.
    pub max_batch: usize,
    /// Admission-control bound on the submission queue.
    pub queue_capacity: usize,
    /// Total result-cache entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Landmark staleness threshold (see [`DynamicLandmarks`]).
    pub refresh_threshold: f64,
    /// Background impact per change (see [`DynamicLandmarks`]).
    pub background_impact: f64,
    /// Exploration depth of the approximate recommender.
    pub explore_depth: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_batch: 64,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            refresh_threshold: 0.1,
            background_impact: 1e-9,
            explore_depth: 2,
        }
    }
}

/// How many snapshot files a durable service keeps on disk. More than
/// one, so a torn newest file always has an older valid fallback
/// (replayed forward through the journal).
pub(crate) const KEEP_SNAPSHOTS: usize = 4;

/// Why a warm restart could not produce a service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// Filesystem access to the durability directory failed.
    Io(String),
    /// No snapshot file in the directory decoded cleanly.
    NoValidSnapshot,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "durability directory unusable: {e}"),
            RestoreError::NoValidSnapshot => write!(f, "no valid snapshot on disk"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The write side of durability: the directory and the open journal.
struct DurableSink {
    dir: PathBuf,
    wal: std::fs::File,
}

impl DurableSink {
    /// Appends one framed record and flushes it to the OS. Called
    /// *before* the in-memory mutation it describes, so a crash at any
    /// later point replays the mutation from disk.
    fn append(&mut self, seq: u64, op: &JournalOp) -> std::io::Result<()> {
        let frame = durable::encode_record(seq, op);
        self.wal.write_all(&frame)?;
        self.wal.flush()?;
        fui_obs::counter("snapshot.persist.journal_appends").incr();
        fui_obs::counter("snapshot.persist.journal_bytes").add(frame.len() as u64);
        Ok(())
    }
}

/// Mutable master state — mutations lock this, queries never do.
struct Master {
    graph: Arc<SocialGraph>,
    authority: Arc<AuthorityIndex>,
    sim_rows: Arc<SimRowCache>,
    index: Arc<LandmarkIndex>,
    sim: SimMatrix,
    dynamic: DynamicLandmarks,
    pending: Vec<EdgeChange>,
    epoch: u64,
    graph_gen: u64,
    slot_versions: Vec<u64>,
    params: ScoreParams,
    variant: ScoreVariant,
    /// Journal position: every mutation with `seq <= applied_seq` is
    /// reflected in this state. Advances on every mutation whether or
    /// not the service is durable, so replay idempotence is uniform.
    applied_seq: u64,
    /// Present iff the service persists to disk.
    durable: Option<DurableSink>,
}

impl Master {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            shard: 0,
            epoch: self.epoch,
            graph_gen: self.graph_gen,
            slot_versions: self.slot_versions.clone(),
            graph: Arc::clone(&self.graph),
            authority: Arc::clone(&self.authority),
            sim_rows: Arc::clone(&self.sim_rows),
            index: Arc::clone(&self.index),
            params: self.params,
            variant: self.variant,
        }
    }

    /// The full durable image of this state.
    fn snapshot_state(&self) -> SnapshotState {
        let (auth, followers_on, maxima) = self.authority.to_parts();
        SnapshotState {
            applied_seq: self.applied_seq,
            epoch: self.epoch,
            graph_gen: self.graph_gen,
            changes_seen: self.dynamic.changes_seen(),
            params: self.params,
            variant: self.variant,
            slot_versions: self.slot_versions.clone(),
            staleness: (0..self.slot_versions.len())
                .map(|s| self.dynamic.staleness_at(s))
                .collect(),
            pending: self.pending.clone(),
            graph: (*self.graph).clone(),
            auth: auth.to_vec(),
            followers_on: followers_on.to_vec(),
            max_followers_on: *maxima,
            index: self.dynamic.index().clone(),
        }
    }
}

/// `service.*` handles resolved once at construction — the request
/// hot path never takes the registry's name-lookup lock. Shared with
/// the sharded router (same metric names, so dashboards and the bench
/// gate see one serving surface either way).
pub(crate) struct ServiceMetrics {
    pub(crate) requests: Counter,
    pub(crate) shed: Counter,
    pub(crate) shed_deadline: Counter,
    pub(crate) rotations: Counter,
    pub(crate) batch_size: Hist,
    pub(crate) request_latency: Hist,
    pub(crate) slo: SloTracker,
}

impl ServiceMetrics {
    pub(crate) fn new() -> ServiceMetrics {
        let requests = fui_obs::counter("service.requests");
        let shed = fui_obs::counter("service.shed");
        let request_latency = fui_obs::hist("service.request_latency");
        ServiceMetrics {
            requests,
            shed,
            shed_deadline: fui_obs::counter("service.shed.deadline"),
            rotations: fui_obs::counter("service.snapshot.rotations"),
            batch_size: fui_obs::hist("service.batch.size"),
            request_latency,
            slo: SloTracker::new(SloConfig::from_env(), request_latency, requests, shed),
        }
    }
}

/// The online serving engine. See the module docs.
pub struct Service {
    master: Mutex<Master>,
    store: SnapshotStore,
    cache: ResultCache,
    batcher: Batcher,
    cfg: ServiceConfig,
    metrics: ServiceMetrics,
}

impl Service {
    /// Builds a service over `graph`: authority index, similarity
    /// rows and the landmark index are precomputed here (the landmark
    /// build fans out over the `fui-exec` pool), then published as
    /// epoch-0 snapshot.
    pub fn new(
        graph: SocialGraph,
        sim: SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
        landmarks: Vec<NodeId>,
        stored_top_n: usize,
        cfg: ServiceConfig,
    ) -> Service {
        let graph = Arc::new(graph);
        let authority = Arc::new(AuthorityIndex::build(&graph));
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        let propagator =
            Propagator::with_sim_cache(&graph, &authority, Arc::clone(&sim_rows), params, variant);
        let index = LandmarkIndex::build_auto(&propagator, landmarks, stored_top_n);
        let dynamic = DynamicLandmarks::with_policy(
            index.clone(),
            cfg.refresh_threshold,
            cfg.background_impact,
        );
        let index = Arc::new(index);
        let slots = index.len();
        let master = Master {
            graph,
            authority,
            sim_rows,
            index,
            sim,
            dynamic,
            pending: Vec::new(),
            epoch: 0,
            graph_gen: 0,
            slot_versions: vec![0; slots],
            params,
            variant,
            applied_seq: 0,
            durable: None,
        };
        Service::assemble(master, cfg)
    }

    fn assemble(master: Master, cfg: ServiceConfig) -> Service {
        let store = SnapshotStore::new(master.snapshot());
        let metrics = ServiceMetrics::new();
        let batcher = Batcher::new(
            cfg.queue_capacity,
            metrics.shed,
            fui_obs::counter("service.shed.queue_full"),
            fui_obs::counter("service.shed.disconnect"),
        );
        Service {
            master: Mutex::new(master),
            store,
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            batcher,
            cfg,
            metrics,
        }
    }

    /// [`Service::new`], then durability: writes the epoch-0 snapshot
    /// and an empty journal under `dir` (created if absent; any
    /// previous journal there is truncated — use
    /// [`restore`](Self::restore) to *resume* a directory). Every
    /// subsequent [`record`](Self::record), [`rotate`](Self::rotate)
    /// and [`refresh`](Self::refresh) write-ahead journals itself
    /// before mutating, and rotation also persists a fresh snapshot,
    /// so a warm restart replays `newest valid snapshot + journal
    /// tail`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_durability(
        graph: SocialGraph,
        sim: SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
        landmarks: Vec<NodeId>,
        stored_top_n: usize,
        cfg: ServiceConfig,
        dir: &Path,
    ) -> std::io::Result<Service> {
        let service = Service::new(graph, sim, params, variant, landmarks, stored_top_n, cfg);
        std::fs::create_dir_all(dir)?;
        {
            let mut m = service.master.lock().expect("master poisoned");
            durable::write_snapshot_atomic(dir, &m.snapshot_state())?;
            let mut wal = std::fs::File::create(dir.join(durable::JOURNAL_FILE))?;
            wal.write_all(durable::WAL_MAGIC)?;
            m.durable = Some(DurableSink {
                dir: dir.to_path_buf(),
                wal,
            });
        }
        Ok(service)
    }

    /// Warm restart: scans `dir` for the newest snapshot that decodes
    /// cleanly *and* whose file name agrees with its header position
    /// (each rejected candidate bumps `snapshot.persist.fallbacks`),
    /// rebuilds the derived state the codec does not carry (similarity
    /// rows, landmark topo lookups), replays the journal tail past the
    /// snapshot's `applied_seq` (a torn final record is dropped and
    /// truncated away), and re-attaches the journal for appending.
    ///
    /// The restored service publishes the same epoch / generation /
    /// versions the killed one had and answers bit-identically to a
    /// twin that never died — the chaos conformance suite holds it to
    /// exactly that.
    pub fn restore(
        dir: &Path,
        sim: SimMatrix,
        cfg: ServiceConfig,
    ) -> Result<Service, RestoreError> {
        Service::restore_inner(dir, sim, cfg, true)
    }

    fn restore_inner(
        dir: &Path,
        sim: SimMatrix,
        cfg: ServiceConfig,
        attach: bool,
    ) -> Result<Service, RestoreError> {
        let io_err = |e: std::io::Error| RestoreError::Io(e.to_string());
        let fallbacks = fui_obs::counter("snapshot.persist.fallbacks");
        let mut chosen = None;
        for (seq, path) in durable::list_snapshots(dir).map_err(io_err)? {
            let read_sp = fui_obs::Span::enter("snapshot.restore.read");
            let raw = std::fs::read(&path);
            read_sp.finish();
            let Ok(raw) = raw else {
                fallbacks.incr();
                continue;
            };
            match durable::decode_snapshot(bytes::Bytes::from(raw)) {
                // A checksum-valid file whose name disagrees with its
                // header position is semantically older than it claims
                // (a stale copy) — fall back past it.
                Ok(state) if state.applied_seq == seq => {
                    chosen = Some(state);
                    break;
                }
                Ok(_) | Err(_) => fallbacks.incr(),
            }
        }
        let Some(state) = chosen else {
            return Err(RestoreError::NoValidSnapshot);
        };

        let wal_path = dir.join(durable::JOURNAL_FILE);
        let wal_raw = std::fs::read(&wal_path).unwrap_or_default();
        let (records, valid_len, torn) = if wal_raw.is_empty() {
            (Vec::new(), 0, None)
        } else {
            durable::decode_journal_prefix(&wal_raw)
        };
        if torn.is_some() {
            fui_obs::counter("snapshot.persist.journal_torn").incr();
        }

        let derive_sp = fui_obs::Span::enter("snapshot.restore.derive");
        let service = Service::from_state(state, sim, cfg);
        derive_sp.finish();
        let replayed = service.apply_journal(&records);
        fui_obs::counter("snapshot.persist.replayed").add(replayed as u64);
        fui_obs::counter("snapshot.persist.restores").incr();

        if attach {
            let wal = if valid_len < durable::WAL_MAGIC.len() {
                // Missing or header-corrupt journal: start fresh.
                let mut f = std::fs::File::create(&wal_path).map_err(io_err)?;
                f.write_all(durable::WAL_MAGIC).map_err(io_err)?;
                f
            } else {
                if torn.is_some() {
                    // Drop the torn (never-acknowledged) tail so the
                    // next append starts at a record boundary.
                    let f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&wal_path)
                        .map_err(io_err)?;
                    f.set_len(valid_len as u64).map_err(io_err)?;
                }
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(&wal_path)
                    .map_err(io_err)?
            };
            service.master.lock().expect("master poisoned").durable = Some(DurableSink {
                dir: dir.to_path_buf(),
                wal,
            });
        }
        Ok(service)
    }

    /// Rebuilds a service around a decoded snapshot state. Similarity
    /// rows and landmark topo lookups are recomputed (both are pure,
    /// deterministic functions of the persisted state).
    fn from_state(state: SnapshotState, sim: SimMatrix, cfg: ServiceConfig) -> Service {
        let graph = Arc::new(state.graph);
        let authority = Arc::new(AuthorityIndex::from_parts(
            state.auth,
            state.followers_on,
            state.max_followers_on,
        ));
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        let dynamic = DynamicLandmarks::restore(
            state.index.clone(),
            cfg.refresh_threshold,
            cfg.background_impact,
            state.staleness,
            state.changes_seen,
        );
        let master = Master {
            graph,
            authority,
            sim_rows,
            index: Arc::new(state.index),
            sim,
            dynamic,
            pending: state.pending,
            epoch: state.epoch,
            graph_gen: state.graph_gen,
            slot_versions: state.slot_versions,
            params: state.params,
            variant: state.variant,
            applied_seq: state.applied_seq,
            durable: None,
        };
        Service::assemble(master, cfg)
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.load()
    }

    /// Live result-cache entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    // ---- read path -----------------------------------------------

    /// Answers one request synchronously (cache → batch of one).
    pub fn call(&self, req: Request) -> Reply {
        self.call_many(std::slice::from_ref(&req))
            .pop()
            .expect("one reply per request")
    }

    /// Answers a slice of requests synchronously, coalescing them into
    /// `max_batch`-sized batches. Replies come back in request order.
    pub fn call_many(&self, reqs: &[Request]) -> Vec<Reply> {
        let mut replies = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(self.cfg.max_batch.max(1)) {
            let traces = chunk.iter().map(|_| TraceCapture::begin()).collect();
            replies.extend(self.answer_batch(chunk, traces));
        }
        replies
    }

    /// Enqueues a request for the next [`pump`](Self::pump), shedding
    /// immediately if the queue is at capacity. `deadline` (if any) is
    /// checked when the pump drains the request. When tracing is
    /// active the request draws a [`fui_obs::TraceId`] here, at
    /// admission, so queue wait is attributed from the moment of
    /// submission.
    pub fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        self.batcher.submit(req, deadline, TraceCapture::begin())
    }

    /// Drains and answers one batch from the submission queue;
    /// returns how many requests it resolved (answered or shed).
    /// Callers drive this: tests and benches call it synchronously
    /// for determinism, the net frontend calls it on a window timer.
    pub fn pump(&self) -> usize {
        let drained = self.batcher.drain(self.cfg.max_batch);
        if drained.is_empty() {
            return 0;
        }
        let now = Instant::now();
        let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
        for p in drained {
            if p.deadline.is_some_and(|d| now > d) {
                self.metrics.shed.incr();
                self.metrics.shed_deadline.incr();
                if let Some(cap) = p.trace {
                    let queue_ns =
                        u64::try_from(now.saturating_duration_since(cap.started_at()).as_nanos())
                            .unwrap_or(u64::MAX);
                    cap.finish(
                        trace_meta(&p.req),
                        TraceOutcome::ShedDeadline,
                        LatencyParts {
                            queue_ns,
                            ..LatencyParts::default()
                        },
                    );
                }
                let _ = p.tx.send(Reply::Overloaded);
            } else {
                live.push(p);
            }
        }
        let total = live.len();
        if total == 0 {
            return total;
        }
        let reqs: Vec<Request> = live.iter().map(|p| p.req).collect();
        let traces = live.iter_mut().map(|p| p.trace.take()).collect();
        let replies = self.answer_batch(&reqs, traces);
        for (p, reply) in live.into_iter().zip(replies) {
            let _ = p.tx.send(reply);
        }
        total
    }

    /// Answers one batch against the currently published snapshot:
    /// probe the cache, group the misses by `top_n`, fan each group
    /// out through `recommend_batch`, stamp and cache the results.
    ///
    /// `traces` runs parallel to `reqs`. A traced request's latency
    /// decomposition is queue wait (submission → batch entry, exact
    /// per request) plus the batch's shared cache / compute / assembly
    /// segments — the batch answers as a unit, so every member's
    /// end-to-end latency covers the whole batch, and the four parts
    /// sum to the recorded total *exactly* (assembly is defined as the
    /// remainder).
    fn answer_batch(&self, reqs: &[Request], traces: Vec<Option<TraceCapture>>) -> Vec<Reply> {
        let started = Instant::now();
        let _span = fui_obs::span!("service.request");
        let snap = self.store.load();
        self.metrics.requests.add(reqs.len() as u64);
        self.metrics.batch_size.record(reqs.len() as u64);

        let mut traces = traces;
        let tracing = traces.iter().any(Option::is_some);
        if tracing {
            for cap in traces.iter_mut().flatten() {
                cap.event(TraceEventKind::BatchJoin, reqs.len() as u64);
                cap.event(TraceEventKind::SnapshotPin, snap.epoch);
            }
        }
        // Timed sub-segments, accumulated only when tracing (the
        // untraced path takes no extra clock reads).
        let mut cache_ns = 0u64;
        let mut compute_ns = 0u64;
        let clock = |on: bool| if on { Some(Instant::now()) } else { None };
        let lap = |t0: Option<Instant>, acc: &mut u64| {
            if let Some(t0) = t0 {
                *acc += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        };

        let mut replies: Vec<Option<Reply>> = (0..reqs.len()).map(|_| None).collect();
        // Miss indices per top_n — BTreeMap so group order (and hence
        // batch composition and counters) is deterministic.
        let mut misses: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, req) in reqs.iter().enumerate() {
            if let Err(why) = validate(req, &snap) {
                replies[i] = Some(Reply::Rejected(why));
                continue;
            }
            let key = key_of(req);
            let t0 = clock(tracing);
            let probed = self.cache.get(key, &snap);
            lap(t0, &mut cache_ns);
            if let Some(cap) = traces[i].as_mut() {
                cap.event(TraceEventKind::CacheProbe, u64::from(probed.is_some()));
            }
            if let Some(value) = probed {
                replies[i] = Some(Reply::Result(Served {
                    recommendations: value,
                    epoch: snap.epoch,
                    cached: true,
                }));
            } else {
                misses.entry(req.top_n).or_default().push(i);
            }
        }

        if misses.values().any(|v| !v.is_empty()) {
            let propagator = snap.propagator();
            let mut rec = ApproxRecommender::new(&propagator, &snap.index);
            rec.explore_depth = self.cfg.explore_depth;
            for (top_n, idxs) in &misses {
                let queries: Vec<(NodeId, Topic)> = idxs
                    .iter()
                    .map(|&i| (reqs[i].user, reqs[i].topic))
                    .collect();
                if tracing {
                    for &i in idxs {
                        if let Some(cap) = traces[i].as_mut() {
                            cap.event(TraceEventKind::PropagateStart, idxs.len() as u64);
                        }
                    }
                }
                let t0 = clock(tracing);
                let results = rec.recommend_batch(&queries, *top_n);
                lap(t0, &mut compute_ns);
                let t0 = clock(tracing);
                for (&i, result) in idxs.iter().zip(results) {
                    let met: Vec<(u32, u64)> = result
                        .met_landmarks
                        .iter()
                        .map(|&l| {
                            let slot = snap.index.slot_of(l).expect("met node is a landmark");
                            (slot, snap.slot_versions[slot as usize])
                        })
                        .collect();
                    let value = Arc::new(result.recommendations);
                    self.cache.insert(
                        key_of(&reqs[i]),
                        Arc::clone(&value),
                        CacheStamp {
                            shard: snap.shard,
                            graph_gen: snap.graph_gen,
                            met,
                        },
                    );
                    replies[i] = Some(Reply::Result(Served {
                        recommendations: value,
                        epoch: snap.epoch,
                        cached: false,
                    }));
                }
                lap(t0, &mut cache_ns);
            }
        }

        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        for _ in reqs {
            self.metrics.request_latency.record(elapsed);
        }
        if tracing {
            let assembly_ns = elapsed.saturating_sub(cache_ns).saturating_sub(compute_ns);
            for (i, cap) in traces.into_iter().enumerate() {
                let Some(cap) = cap else { continue };
                let outcome = match replies[i].as_ref() {
                    Some(Reply::Result(s)) if s.cached => TraceOutcome::OkCached,
                    Some(Reply::Result(_)) => TraceOutcome::Ok,
                    _ => TraceOutcome::Rejected,
                };
                let queue_ns = u64::try_from(
                    started
                        .saturating_duration_since(cap.started_at())
                        .as_nanos(),
                )
                .unwrap_or(u64::MAX);
                cap.finish(
                    trace_meta(&reqs[i]),
                    outcome,
                    LatencyParts {
                        queue_ns,
                        assembly_ns,
                        compute_ns,
                        cache_ns,
                        scatter_ns: 0,
                    },
                );
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    // ---- write path ----------------------------------------------

    /// Records one follow/unfollow. The change is buffered until the
    /// next [`rotate`](Self::rotate); staleness is charged to the
    /// landmarks immediately, and any landmark the charge pushes past
    /// its threshold gets its cache version bumped right away (a new
    /// epoch is published so probes see it), conservatively retiring
    /// cached results that composed through the now-suspect entry.
    pub fn record(&self, change: EdgeChange) -> Result<(), String> {
        let mut m = self.master.lock().expect("master poisoned");
        let n = m.graph.num_nodes() as u32;
        if change.follower.0 >= n || change.followee.0 >= n {
            return Err(format!("edge endpoints out of range (graph has {n} nodes)"));
        }
        if change.follower == change.followee {
            return Err("self-follows are not representable".to_owned());
        }
        let seq = m.applied_seq + 1;
        if let Some(sink) = m.durable.as_mut() {
            sink.append(seq, &JournalOp::Change(change))
                .map_err(|e| format!("journal append failed: {e}"))?;
        }
        m.applied_seq = seq;
        self.apply_change_inner(&mut m, change);
        Ok(())
    }

    /// The in-memory effect of one (already journaled, already
    /// validated) change — shared by the live path and journal replay.
    fn apply_change_inner(&self, m: &mut Master, change: EdgeChange) {
        let slots = m.dynamic.index().len();
        let was: Vec<bool> = (0..slots).map(|s| m.dynamic.is_stale(s)).collect();
        m.dynamic.record(&change);
        m.pending.push(change);
        let newly: Vec<usize> = (0..slots)
            .filter(|&s| !was[s] && m.dynamic.is_stale(s))
            .collect();
        if !newly.is_empty() {
            for s in newly {
                m.slot_versions[s] += 1;
            }
            m.epoch += 1;
            self.store.publish(m.snapshot());
        }
    }

    /// Number of changes recorded but not yet rotated in.
    pub fn pending_changes(&self) -> usize {
        self.master.lock().expect("master poisoned").pending.len()
    }

    /// Applies all pending edge changes: rebuilds graph, authority
    /// index and similarity rows, bumps `graph_gen` (retiring every
    /// cached result) and publishes. Landmark entries are *not*
    /// recomputed — the lazy policy keeps serving slightly stale lists
    /// until [`refresh`](Self::refresh), exactly the trade-off the
    /// paper anticipates for churning follow graphs. Never blocks
    /// in-flight queries; they finish on their old snapshot. Returns
    /// the new epoch.
    pub fn rotate(&self) -> u64 {
        let _span = fui_obs::span!("service.rotate");
        let mut m = self.master.lock().expect("master poisoned");
        let seq = m.applied_seq + 1;
        if let Some(sink) = m.durable.as_mut() {
            sink.append(seq, &JournalOp::Rotate)
                .expect("journal append failed");
        }
        m.applied_seq = seq;
        let epoch = self.rotate_inner(&mut m);
        if m.durable.is_some() {
            // A rotation rebuilt the expensive indices — checkpoint so
            // a warm restart replays from here, not from scratch.
            self.persist_locked(&mut m).expect("snapshot write failed");
        }
        epoch
    }

    fn rotate_inner(&self, m: &mut Master) -> u64 {
        self.metrics.rotations.incr();
        if !m.pending.is_empty() {
            let next = apply_changes(&m.graph, &m.pending);
            m.pending.clear();
            m.graph = Arc::new(next);
            m.authority = Arc::new(AuthorityIndex::build(&m.graph));
            m.sim_rows = Arc::new(SimRowCache::build(&m.graph, &m.sim));
        }
        m.graph_gen += 1;
        m.epoch += 1;
        self.store.publish(m.snapshot());
        m.epoch
    }

    /// Recomputes every stale landmark against the current graph and
    /// publishes the refreshed index under a new epoch, bumping the
    /// refreshed slots' cache versions (results that never met those
    /// landmarks keep their cache entries). Returns how many entries
    /// were refreshed.
    pub fn refresh(&self) -> usize {
        let _span = fui_obs::span!("service.refresh");
        let mut m = self.master.lock().expect("master poisoned");
        let seq = m.applied_seq + 1;
        if let Some(sink) = m.durable.as_mut() {
            sink.append(seq, &JournalOp::Refresh)
                .expect("journal append failed");
        }
        m.applied_seq = seq;
        self.refresh_inner(&mut m)
    }

    fn refresh_inner(&self, m: &mut Master) -> usize {
        let stale = m.dynamic.stale_slots();
        if stale.is_empty() {
            return 0;
        }
        let propagator = Propagator::with_sim_cache(
            &m.graph,
            &m.authority,
            Arc::clone(&m.sim_rows),
            m.params,
            m.variant,
        );
        let refreshed = m.dynamic.refresh_stale(&propagator);
        for &s in &stale {
            m.slot_versions[s] += 1;
        }
        m.index = Arc::new(m.dynamic.index().clone());
        m.epoch += 1;
        self.store.publish(m.snapshot());
        refreshed
    }

    // ---- durability ----------------------------------------------

    /// Replays journal records into the master state. Records at or
    /// below the current `applied_seq` are skipped — replaying a tail
    /// twice is bit-identical to replaying it once — and records whose
    /// change no longer validates against the graph are counted on
    /// `snapshot.persist.replay_rejected` rather than applied. Returns
    /// how many records were applied. Replay never journals (the
    /// records are already on disk).
    pub fn apply_journal(&self, records: &[JournalRecord]) -> usize {
        let mut m = self.master.lock().expect("master poisoned");
        let mut applied = 0;
        for r in records {
            if r.seq <= m.applied_seq {
                continue;
            }
            m.applied_seq = r.seq;
            match r.op {
                JournalOp::Change(change) => {
                    let n = m.graph.num_nodes() as u32;
                    if change.follower.0 >= n
                        || change.followee.0 >= n
                        || change.follower == change.followee
                    {
                        fui_obs::counter("snapshot.persist.replay_rejected").incr();
                        continue;
                    }
                    self.apply_change_inner(&mut m, change);
                }
                JournalOp::Rotate => {
                    self.rotate_inner(&mut m);
                }
                JournalOp::Refresh => {
                    self.refresh_inner(&mut m);
                }
            }
            applied += 1;
        }
        applied
    }

    /// Writes a full snapshot of the current master state to the
    /// durability directory (atomic temp-file + rename), pruning all
    /// but the newest `KEEP_SNAPSHOTS` files. Returns the journal
    /// position the snapshot captures and its encoded size. Errors
    /// with `Unsupported` on a non-durable service.
    pub fn persist(&self) -> std::io::Result<(u64, usize)> {
        let mut m = self.master.lock().expect("master poisoned");
        self.persist_locked(&mut m)
    }

    fn persist_locked(&self, m: &mut Master) -> std::io::Result<(u64, usize)> {
        let Some(dir) = m.durable.as_ref().map(|s| s.dir.clone()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "service is not durable",
            ));
        };
        let state = m.snapshot_state();
        let (_, bytes) = durable::write_snapshot_atomic(&dir, &state)?;
        prune_snapshots(&dir);
        Ok((state.applied_seq, bytes))
    }

    /// Dry-run warm restart against this service's own durability
    /// directory: decodes the newest valid snapshot, replays the
    /// journal tail into a throwaway twin (nothing on disk is touched)
    /// and reports `(epoch, graph_gen, applied_seq)` the twin reached.
    /// A healthy directory reports exactly this service's live values.
    pub fn restore_probe(&self) -> Result<(u64, u64, u64), String> {
        let (dir, sim) = {
            let m = self.master.lock().expect("master poisoned");
            let Some(sink) = m.durable.as_ref() else {
                return Err("service is not durable".to_owned());
            };
            (sink.dir.clone(), m.sim.clone())
        };
        let probe =
            Service::restore_inner(&dir, sim, self.cfg, false).map_err(|e| e.to_string())?;
        let snap = probe.snapshot();
        let applied = probe.applied_seq();
        Ok((snap.epoch, snap.graph_gen, applied))
    }

    /// Journal position of the last applied mutation.
    pub fn applied_seq(&self) -> u64 {
        self.master.lock().expect("master poisoned").applied_seq
    }

    /// Whether this service journals and snapshots to disk.
    pub fn is_durable(&self) -> bool {
        self.master
            .lock()
            .expect("master poisoned")
            .durable
            .is_some()
    }

    // ---- introspection -------------------------------------------

    /// Takes an SLO checkpoint and reports current burn rates over the
    /// rolling window (latency arm: `service.request_latency` against
    /// the p99 target; shed arm: `service.shed` against the ceiling —
    /// see [`fui_obs::slo`]).
    pub fn slo(&self) -> SloReport {
        self.metrics.slo.observe()
    }

    /// The `n` slowest recently traced requests, slowest first (empty
    /// unless tracing is active — see [`fui_obs::trace`]).
    pub fn trace_slowest(&self, n: usize) -> Vec<RequestTrace> {
        fui_obs::trace::slowest(n)
    }

    /// The unsharded engine viewed as a one-shard fleet — what the
    /// line-protocol `SHARDS` verb renders when the backend is a plain
    /// service. Edge mass follows the partitioner's convention (every
    /// edge charged to both endpoint owners — here the same shard).
    pub fn fleet_status(&self) -> crate::shard::FleetStatus {
        let snap = self.store.load();
        let slo = self.metrics.slo.observe();
        crate::shard::FleetStatus {
            strategy: "unsharded",
            cut_edges: 0,
            crit_ns: 0,
            shards: vec![crate::shard::ShardStatus {
                id: 0,
                epoch: snap.epoch,
                graph_gen: snap.graph_gen,
                queue_depth: self.batcher.depth(),
                pending_changes: self.pending_changes() as u64,
                busy_ns: 0,
                cache_entries: self.cache.len(),
                owned_nodes: snap.graph.num_nodes(),
                edge_mass: 2 * snap.graph.num_edges() as u64,
                requests: self.metrics.requests.get(),
                shed: self.metrics.shed.get(),
                shed_queue_full: fui_obs::counter("service.shed.queue_full").get(),
                shed_deadline: self.metrics.shed_deadline.get(),
                latency_burn: slo.latency_burn,
                shed_burn: slo.shed_burn,
            }],
        }
    }
}

/// Best-effort retention: keep the newest [`KEEP_SNAPSHOTS`] snapshot
/// files, delete the rest. The journal is never truncated here, so any
/// surviving snapshot plus the journal reaches the present state.
pub(crate) fn prune_snapshots(dir: &Path) {
    if let Ok(found) = durable::list_snapshots(dir) {
        for (_, path) in found.into_iter().skip(KEEP_SNAPSHOTS) {
            let _ = std::fs::remove_file(path);
        }
    }
}

pub(crate) fn key_of(req: &Request) -> CacheKey {
    CacheKey {
        user: req.user.0,
        topic: req.topic.index() as u8,
        top_n: u32::try_from(req.top_n).unwrap_or(u32::MAX),
    }
}

pub(crate) fn validate(req: &Request, snap: &Snapshot) -> Result<(), String> {
    if req.user.index() >= snap.graph.num_nodes() {
        return Err(format!(
            "unknown user {} (graph has {} nodes)",
            req.user.0,
            snap.graph.num_nodes()
        ));
    }
    if req.top_n == 0 {
        return Err("top_n must be at least 1".to_owned());
    }
    Ok(())
}
