//! Online serving layer for the landmark recommender.
//!
//! Everything below this crate computes offline; this crate turns the
//! batch pipeline into a request-driven server — the regime the paper
//! actually motivates (interactive "who should I follow on topic t"
//! queries against a follow graph whose edges churn constantly):
//!
//! * [`snapshot`] — epoch-based publication: queries read immutable
//!   `Arc`-shared (graph, authority, similarity-rows, landmark-index)
//!   snapshots; rotation and refresh swap the current pointer and
//!   never block an in-flight query;
//! * [`cache`] — sharded LRU result cache, invalidated precisely: by
//!   graph generation on rotation, and per landmark slot on refresh or
//!   staleness, so results that never met a refreshed landmark survive;
//! * [`batch`] — micro-batching submission queue with admission
//!   control: a full queue sheds with an explicit
//!   [`Reply::Overloaded`], never a stall;
//! * [`service`] — the engine: deterministic [`Service::call`] /
//!   [`Service::call_many`] plus the `submit`/`pump` pair, follow /
//!   unfollow recording, [`Service::rotate`] and [`Service::refresh`];
//! * [`shard`] / [`router`] — partitioned serving: N candidate-owning
//!   shards (each its own snapshot store, result cache and admission
//!   queue) behind a scatter/gather [`ShardedService`] that answers
//!   bit-identically to the unsharded engine at any shard count, with
//!   staggered per-shard rotation and per-shard WAL journaling;
//! * [`net`] — a thin `std::net` line-protocol frontend for manual
//!   poking (including the `STATS` / `SLO` / `TRACE` / `SHARDS`
//!   introspection verbs); tests and benches use the in-process API.
//!
//! The whole path reports through `fui-obs`: `service.requests`,
//! `service.shed` (with its `service.shed.{queue_full,deadline,
//! disconnect}` cause breakdown), `service.cache.{hits,misses,
//! evictions}`, `service.snapshot.rotations`, the `service.batch.size`
//! and `service.request_latency` histograms and `service.{request,
//! rotate,refresh}` spans. Handles are resolved once at construction —
//! the request path never takes the registry's name-lookup lock.
//!
//! Per-request attribution goes further: when tracing is active
//! (`FUI_OBS=full` and `FUI_TRACE_SAMPLE` > 0) every request draws a
//! [`fui_obs::TraceId`] at admission and carries a
//! queue-wait/assembly/compute/cache latency decomposition plus an
//! event timeline (enqueue, batch join, snapshot pin, cache probe,
//! propagate start, finish/shed-with-cause) into `fui-obs`'s lock-free
//! ring journal; [`Service::trace_slowest`] and the `TRACE <n>` verb
//! read it back, and [`Service::slo`] / the `SLO` verb report rolling
//! p99-target and shed-ceiling burn rates. Tracing is bit-invisible to
//! results at any sample rate — the conformance suite and the CI bench
//! gate both enforce it.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod durable;
pub mod net;
pub mod router;
pub mod service;
pub mod shard;
pub mod snapshot;

pub use batch::Ticket;
pub use cache::{CacheKey, CacheStamp, ResultCache};
pub use durable::{JournalOp, JournalRecord, SnapshotState};
pub use net::{execute_control, parse_node, parse_topic, parse_topics, render_reply};
pub use net::{Backend, NetConfig, NetServer};
pub use router::{ShardSpec, ShardedService};
pub use service::{Reply, Request, RestoreError, Served, Service, ServiceConfig};
pub use shard::{FleetStatus, ShardStatus};
pub use snapshot::{apply_changes, Snapshot, SnapshotStore};
