//! Thin `std::net` line-protocol frontend.
//!
//! One request or reply per `\n`-terminated line, ASCII, no framing
//! beyond that — trivially scriptable with `nc`. Commands:
//!
//! ```text
//! REC <user> <topic> [top_n]          who should <user> follow on <topic>
//! FOLLOW <follower> <followee> <topics>   topics comma-separated
//! UNFOLLOW <follower> <followee>
//! ROTATE                              apply pending changes now
//! REFRESH                             recompute stale landmarks now
//! EPOCH                               current snapshot epoch
//! SNAPSHOT                            persist a durable snapshot now
//! RESTORE                             dry-run a warm restart from disk
//! STATS                               dump every counter/gauge/histogram
//! SLO                                 current burn rates / error budget
//! TRACE <n>                           the n slowest traced requests
//! SHARDS                              per-shard fleet status rows
//! QUIT                                close the connection
//! ```
//!
//! Replies:
//!
//! ```text
//! OK REC <epoch> <cached:0|1> <node>:<score> ...
//! OK FOLLOW | OK UNFOLLOW | OK ROTATE <epoch> | OK REFRESH <n> | OK EPOCH <e>
//! OK SNAPSHOT <seq> <bytes> | OK RESTORE epoch=<e> gen=<g> applied_seq=<s>
//! OVERLOADED                          shed; retry later
//! ERR <reason>
//! ```
//!
//! The introspection verbs answer multi-line (the first line carries
//! the count of lines that follow, so a client knows when to stop
//! reading):
//!
//! ```text
//! OK STATS <n>                        then n lines:
//!   C <name> <value>                  counter
//!   G <name> <value>                  gauge
//!   H <name> count=<c> sum_ns=<s> p50_ns=<..> p95_ns=<..> p99_ns=<..> max_ns=<..>
//! OK SLO window_secs=<..> target_ns=<..> sampled=<..> over_target=<..>
//!        latency_burn=<..> latency_budget_remaining=<..> requests=<..>
//!        shed=<..> shed_burn=<..> shed_budget_remaining=<..>   (one line)
//! OK TRACE <k>                        then, per request, a REQ line:
//!   REQ id=<hex> user=<u> topic=<name> top_n=<n> outcome=<o> total_ns=<t>
//!       queue_ns=<q> assembly_ns=<a> compute_ns=<c> cache_ns=<h>
//!       scatter_ns=<x> events=<m>
//!   followed by its m timeline lines:  EV <at_ns> <kind> <arg>
//! OK SHARDS <n> strategy=<s> cut_edges=<c>   then n per-shard rows:
//!   S <id> epoch=<e> gen=<g> queue=<q> pending=<p> busy_ns=<b>
//!     cache=<c> owned=<o> edge_mass=<m> requests=<r> shed=<s>
//!     queue_full=<qf> deadline=<dl> latency_burn=<lb> shed_burn=<sb>
//! ```
//!
//! `TRACE` returns requests only while tracing is active
//! (`FUI_OBS=full` with `FUI_TRACE_SAMPLE` > 0); the queue / assembly
//! / compute / cache / scatter parts of each `REQ` line sum to its
//! `total_ns` exactly (assembly is defined as the remainder; scatter
//! is 0 on an unsharded backend).
//!
//! Scores print with Rust's shortest-round-trip `f64` formatting, so a
//! client parsing them back gets the exact served bits.
//!
//! The server is generic over [`Backend`]: the unsharded [`Service`]
//! and the sharded [`crate::ShardedService`] fleet answer the same
//! verb set (`SHARDS` on a plain service renders one `"unsharded"`
//! row).
//!
//! `REC` goes through the micro-batching queue: the handler submits
//! and blocks on its ticket while a window thread pumps the service
//! every [`NetConfig::window`]; concurrent connections therefore
//! coalesce into shared `recommend_batch` calls. An overloaded queue
//! or a missed deadline answers `OVERLOADED` immediately — a client is
//! never left hanging.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fui_graph::NodeId;
use fui_landmarks::EdgeChange;
use fui_obs::{RequestTrace, SloReport};
use fui_taxonomy::{Topic, TopicSet};

use crate::batch::Ticket;
use crate::router::ShardedService;
use crate::service::{Reply, Request, Service};
use crate::shard::FleetStatus;

/// The engine operations the line protocol needs — implemented by the
/// unsharded [`Service`] and the sharded [`ShardedService`], so one
/// [`NetServer`] fronts either.
pub trait Backend: Send + Sync + 'static {
    /// Enqueues a request for the pump thread.
    fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply>;
    /// Drains and answers one batch; returns how many it answered.
    fn pump(&self) -> usize;
    /// Records one follow/unfollow.
    fn record(&self, change: EdgeChange) -> Result<(), String>;
    /// Applies pending changes; returns the new epoch.
    fn rotate(&self) -> u64;
    /// Recomputes stale landmarks; returns how many.
    fn refresh(&self) -> usize;
    /// Currently published epoch.
    fn epoch(&self) -> u64;
    /// Persists a durable snapshot now.
    fn persist(&self) -> std::io::Result<(u64, usize)>;
    /// Dry-run warm restart; `(epoch, graph_gen, applied_seq)`.
    fn restore_probe(&self) -> Result<(u64, u64, u64), String>;
    /// SLO checkpoint over the rolling window.
    fn slo(&self) -> SloReport;
    /// The `n` slowest recently traced requests.
    fn trace_slowest(&self, n: usize) -> Vec<RequestTrace>;
    /// Per-shard status rows (one `"unsharded"` row on a plain
    /// service).
    fn shards(&self) -> FleetStatus;
}

impl Backend for Service {
    fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        Service::submit(self, req, deadline)
    }
    fn pump(&self) -> usize {
        Service::pump(self)
    }
    fn record(&self, change: EdgeChange) -> Result<(), String> {
        Service::record(self, change)
    }
    fn rotate(&self) -> u64 {
        Service::rotate(self)
    }
    fn refresh(&self) -> usize {
        Service::refresh(self)
    }
    fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }
    fn persist(&self) -> std::io::Result<(u64, usize)> {
        Service::persist(self)
    }
    fn restore_probe(&self) -> Result<(u64, u64, u64), String> {
        Service::restore_probe(self)
    }
    fn slo(&self) -> SloReport {
        Service::slo(self)
    }
    fn trace_slowest(&self, n: usize) -> Vec<RequestTrace> {
        Service::trace_slowest(self, n)
    }
    fn shards(&self) -> FleetStatus {
        self.fleet_status()
    }
}

impl Backend for ShardedService {
    fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        ShardedService::submit(self, req, deadline)
    }
    fn pump(&self) -> usize {
        ShardedService::pump(self)
    }
    fn record(&self, change: EdgeChange) -> Result<(), String> {
        ShardedService::record(self, change)
    }
    fn rotate(&self) -> u64 {
        ShardedService::rotate(self)
    }
    fn refresh(&self) -> usize {
        ShardedService::refresh(self)
    }
    fn epoch(&self) -> u64 {
        ShardedService::epoch(self)
    }
    fn persist(&self) -> std::io::Result<(u64, usize)> {
        ShardedService::persist(self)
    }
    fn restore_probe(&self) -> Result<(u64, u64, u64), String> {
        ShardedService::restore_probe(self)
    }
    fn slo(&self) -> SloReport {
        ShardedService::slo(self)
    }
    fn trace_slowest(&self, n: usize) -> Vec<RequestTrace> {
        ShardedService::trace_slowest(self, n)
    }
    fn shards(&self) -> FleetStatus {
        self.status()
    }
}

/// Frontend tuning.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Micro-batch coalescing window (pump cadence when idle).
    pub window: Duration,
    /// Per-request deadline, measured from submission.
    pub deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            window: Duration::from_millis(1),
            deadline: Duration::from_secs(2),
        }
    }
}

/// A running listener + pump pair. Dropping without
/// [`shutdown`](NetServer::shutdown) leaks the threads (they exit
/// with the process); tests should shut down explicitly.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop plus the batch-window pump thread.
    pub fn start<B: Backend>(
        service: Arc<B>,
        addr: &str,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    std::thread::spawn(move || handle(stream, &*service, cfg));
                }
            })
        };
        let pump = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if service.pump() == 0 {
                        std::thread::park_timeout(cfg.window);
                    }
                }
                // Resolve anything still queued so no client hangs.
                while service.pump() > 0 {}
            })
        };
        Ok(NetServer {
            addr: local,
            stop,
            accept: Some(accept),
            pump: Some(pump),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue and joins the threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

fn handle<B: Backend>(stream: TcpStream, service: &B, cfg: NetConfig) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(peer_read);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("QUIT") {
            break;
        }
        let response = dispatch(line, service, cfg);
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

fn dispatch<B: Backend>(line: &str, service: &B, cfg: NetConfig) -> String {
    match run_command(line, service, cfg) {
        Ok(ok) => ok,
        Err(err) => format!("ERR {err}"),
    }
}

fn run_command<B: Backend>(line: &str, service: &B, cfg: NetConfig) -> Result<String, String> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    if verb == "REC" {
        let user = parse_node(parts.next())?;
        let topic = parse_topic(parts.next())?;
        let top_n = match parts.next() {
            Some(s) => s.parse::<usize>().map_err(|_| format!("bad top_n {s:?}"))?,
            None => 10,
        };
        expect_end(parts)?;
        let req = Request { user, topic, top_n };
        let deadline = Instant::now() + cfg.deadline;
        return match service.submit(req, Some(deadline)) {
            Ok(ticket) => Ok(render_reply(&ticket.wait())),
            Err(_) => Ok("OVERLOADED".to_owned()),
        };
    }
    execute_control(line, service)
}

/// Runs any control verb (everything except `REC` and `QUIT`) and
/// renders its reply line.
///
/// This is the single dispatch path behind both frontends: the line
/// protocol calls it from its per-connection handler and the `fui-net`
/// HTTP frontend calls it from the event loop, so control answers are
/// byte-identical over either transport by construction.
pub fn execute_control<B: Backend>(line: &str, service: &B) -> Result<String, String> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    match verb.as_str() {
        "FOLLOW" => {
            let follower = parse_node(parts.next())?;
            let followee = parse_node(parts.next())?;
            let labels = parse_topics(parts.next())?;
            expect_end(parts)?;
            service.record(EdgeChange::insert(follower, followee, labels))?;
            Ok("OK FOLLOW".to_owned())
        }
        "UNFOLLOW" => {
            let follower = parse_node(parts.next())?;
            let followee = parse_node(parts.next())?;
            expect_end(parts)?;
            service.record(EdgeChange::remove(follower, followee, TopicSet::empty()))?;
            Ok("OK UNFOLLOW".to_owned())
        }
        "ROTATE" => {
            expect_end(parts)?;
            Ok(format!("OK ROTATE {}", service.rotate()))
        }
        "REFRESH" => {
            expect_end(parts)?;
            Ok(format!("OK REFRESH {}", service.refresh()))
        }
        "EPOCH" => {
            expect_end(parts)?;
            Ok(format!("OK EPOCH {}", service.epoch()))
        }
        "SNAPSHOT" => {
            expect_end(parts)?;
            let (seq, bytes) = service.persist().map_err(|e| e.to_string())?;
            Ok(format!("OK SNAPSHOT {seq} {bytes}"))
        }
        "RESTORE" => {
            expect_end(parts)?;
            let (epoch, gen, applied) = service.restore_probe()?;
            Ok(format!(
                "OK RESTORE epoch={epoch} gen={gen} applied_seq={applied}"
            ))
        }
        "STATS" => {
            expect_end(parts)?;
            Ok(render_stats())
        }
        "SLO" => {
            expect_end(parts)?;
            Ok(render_slo(service.slo()))
        }
        "TRACE" => {
            let n = match parts.next() {
                Some(s) => s.parse::<usize>().map_err(|_| format!("bad count {s:?}"))?,
                None => 5,
            };
            expect_end(parts)?;
            Ok(render_traces(service.trace_slowest(n)))
        }
        "SHARDS" => {
            expect_end(parts)?;
            Ok(render_shards(service.shards()))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Text exposition of the whole metrics registry.
fn render_stats() -> String {
    let snap = fui_obs::snapshot();
    let mut lines = Vec::new();
    for (name, v) in &snap.counters {
        lines.push(format!("C {name} {v}"));
    }
    for (name, v) in &snap.gauges {
        lines.push(format!("G {name} {v}"));
    }
    for (name, s) in &snap.hists {
        lines.push(format!(
            "H {name} count={} sum_ns={} p50_ns={} p95_ns={} p99_ns={} max_ns={}",
            s.count, s.sum, s.p50, s.p95, s.p99, s.max
        ));
    }
    let mut out = format!("OK STATS {}", lines.len());
    for line in lines {
        out.push('\n');
        out.push_str(&line);
    }
    out
}

fn render_slo(r: fui_obs::SloReport) -> String {
    format!(
        "OK SLO window_secs={:.3} target_ns={} sampled={} over_target={} \
         latency_burn={:.6} latency_budget_remaining={:.6} requests={} shed={} \
         shed_burn={:.6} shed_budget_remaining={:.6}",
        r.window_secs,
        r.latency_target_ns,
        r.sampled,
        r.over_target,
        r.latency_burn,
        r.latency_budget_remaining,
        r.requests,
        r.shed,
        r.shed_burn,
        r.shed_budget_remaining,
    )
}

fn render_traces(traces: Vec<fui_obs::RequestTrace>) -> String {
    let mut out = format!("OK TRACE {}", traces.len());
    for t in traces {
        let topic = Topic::try_from_index(t.meta.topic as usize).map_or("?", |topic| topic.name());
        out.push_str(&format!(
            "\nREQ id={} user={} topic={} top_n={} outcome={} total_ns={} \
             queue_ns={} assembly_ns={} compute_ns={} cache_ns={} scatter_ns={} \
             events={}",
            t.id,
            t.meta.user,
            topic,
            t.meta.top_n,
            t.outcome.as_str(),
            t.total_ns,
            t.parts.queue_ns,
            t.parts.assembly_ns,
            t.parts.compute_ns,
            t.parts.cache_ns,
            t.parts.scatter_ns,
            t.events.len(),
        ));
        for e in &t.events {
            out.push_str(&format!("\nEV {} {} {}", e.at_ns, e.kind.as_str(), e.arg));
        }
    }
    out
}

fn render_shards(status: FleetStatus) -> String {
    let mut out = format!(
        "OK SHARDS {} strategy={} cut_edges={} crit_ns={}",
        status.shards.len(),
        status.strategy,
        status.cut_edges,
        status.crit_ns,
    );
    for s in &status.shards {
        out.push_str(&format!(
            "\nS {} epoch={} gen={} queue={} pending={} busy_ns={} cache={} \
             owned={} edge_mass={} requests={} shed={} queue_full={} deadline={} \
             latency_burn={:.6} shed_burn={:.6}",
            s.id,
            s.epoch,
            s.graph_gen,
            s.queue_depth,
            s.pending_changes,
            s.busy_ns,
            s.cache_entries,
            s.owned_nodes,
            s.edge_mass,
            s.requests,
            s.shed,
            s.shed_queue_full,
            s.shed_deadline,
            s.latency_burn,
            s.shed_burn,
        ));
    }
    out
}

/// Renders a [`Reply`] as its protocol line (`OK REC ...`,
/// `OVERLOADED` or `ERR ...`), with shortest-round-trip `f64` score
/// formatting. Public so the HTTP frontend serves the exact same
/// bytes for a redeemed ticket as the line protocol does.
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Result(served) => {
            let mut out = format!("OK REC {} {}", served.epoch, u8::from(served.cached));
            for &(v, s) in served.recommendations.iter() {
                out.push_str(&format!(" {}:{}", v.0, s));
            }
            out
        }
        Reply::Overloaded => "OVERLOADED".to_owned(),
        Reply::Rejected(why) => format!("ERR {why}"),
    }
}

/// Parses a node-id token (`None` means the token was missing); the
/// error strings are part of the wire contract shared by both
/// frontends.
pub fn parse_node(tok: Option<&str>) -> Result<NodeId, String> {
    let tok = tok.ok_or("missing node id")?;
    tok.parse::<u32>()
        .map(NodeId)
        .map_err(|_| format!("bad node id {tok:?}"))
}

/// Parses a topic-name token (`None` means the token was missing).
pub fn parse_topic(tok: Option<&str>) -> Result<Topic, String> {
    let tok = tok.ok_or("missing topic")?;
    Topic::from_str(tok).map_err(|e| e.to_string())
}

/// Parses a comma-separated topic list token (`None` means the token
/// was missing).
pub fn parse_topics(tok: Option<&str>) -> Result<TopicSet, String> {
    let tok = tok.ok_or("missing topics")?;
    let mut set = TopicSet::empty();
    for name in tok.split(',') {
        set.insert(Topic::from_str(name).map_err(|e| e.to_string())?);
    }
    Ok(set)
}

fn expect_end<'a>(mut parts: impl Iterator<Item = &'a str>) -> Result<(), String> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected trailing argument {extra:?}")),
    }
}
