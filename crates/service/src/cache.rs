//! Sharded, generation-stamped LRU result cache.
//!
//! A cached recommendation list is a pure function of
//! *(graph, entries of the landmarks the exploration met, request)* —
//! the landmark *set* (and hence the exploration's prune mask) is fixed
//! for the lifetime of a service, and landmarks the query never met
//! contribute nothing. So instead of flushing the whole cache on every
//! index event, each entry is stamped with the `graph_gen` it was
//! computed under plus the `(slot, version)` pair of every landmark it
//! composed through, and a probe re-validates the stamp against the
//! *current* snapshot:
//!
//! * a graph rotation bumps `graph_gen` → every entry is dead;
//! * a landmark refresh (or staleness flag) bumps that slot's version
//!   → only entries that met that landmark are dead.
//!
//! Everything here is deterministic on purpose — the CI bench gate
//! asserts exact equality of `service.cache.{hits,misses,evictions}`
//! across runs and thread counts. Shard selection uses a fixed
//! SplitMix-style hash (never `RandomState`, which is seeded per
//! process), and LRU eviction uses a per-shard monotone tick, so the
//! victim is always unique.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fui_graph::NodeId;

use crate::snapshot::Snapshot;

/// Identity of a cacheable request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query node.
    pub user: u32,
    /// Topic index (`Topic::index()`).
    pub topic: u8,
    /// Requested list length.
    pub top_n: u32,
}

/// Validity stamp recorded with a cached value.
#[derive(Clone, Debug)]
pub struct CacheStamp {
    /// Shard the value was computed on. Slot indices are only unique
    /// within one shard once the store is partitioned, so the stamp is
    /// effectively a set of `(shard, slot, version)` triples: an entry
    /// can only validate against its own shard's published snapshot.
    pub shard: u32,
    /// Graph generation the value was computed under.
    pub graph_gen: u64,
    /// `(slot, version)` of every landmark the exploration met.
    pub met: Vec<(u32, u64)>,
}

impl CacheStamp {
    fn valid_for(&self, snap: &Snapshot) -> bool {
        self.shard == snap.shard
            && self.graph_gen == snap.graph_gen
            && self
                .met
                .iter()
                .all(|&(slot, v)| snap.slot_versions[slot as usize] == v)
    }
}

struct Entry {
    value: Arc<Vec<(NodeId, f64)>>,
    stamp: CacheStamp,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// The sharded LRU cache.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: fui_obs::Counter,
    misses: fui_obs::Counter,
    evictions: fui_obs::Counter,
}

/// Fixed 64-bit mix (SplitMix64 finalizer) — stable across processes,
/// unlike `std`'s per-instance-seeded `RandomState`.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ResultCache {
    /// A cache of at most `capacity` entries split over `shards`
    /// shards (each shard holds `capacity / shards`, rounded up, min
    /// one entry).
    pub fn new(capacity: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            // Handles resolved once — probes never take the registry's
            // name-lookup lock.
            hits: fui_obs::counter("service.cache.hits"),
            misses: fui_obs::counter("service.cache.misses"),
            evictions: fui_obs::counter("service.cache.evictions"),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard> {
        let packed =
            (u64::from(key.user) << 32) | (u64::from(key.topic) << 24) | u64::from(key.top_n);
        &self.shards[(mix(packed) % self.shards.len() as u64) as usize]
    }

    /// Probes for `key`, validating the stamp against `snap`. A stale
    /// entry is dropped on probe (counted as an eviction *and* a miss).
    pub fn get(&self, key: CacheKey, snap: &Snapshot) -> Option<Arc<Vec<(NodeId, f64)>>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get(&key) {
            Some(e) if e.stamp.valid_for(snap) => {
                shard.tick += 1;
                let tick = shard.tick;
                let e = shard.map.get_mut(&key).expect("entry just seen");
                e.last_used = tick;
                self.hits.incr();
                Some(Arc::clone(&e.value))
            }
            Some(_) => {
                shard.map.remove(&key);
                self.evictions.incr();
                self.misses.incr();
                None
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Inserts a freshly-computed value, evicting the least-recently
    /// used entry of the shard if it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<(NodeId, f64)>>, stamp: CacheStamp) {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            // Ticks are unique within a shard, so the victim is too.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("full shard has entries");
            shard.map.remove(&victim);
            self.evictions.incr();
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(
            key,
            Entry {
                value,
                stamp,
                last_used: tick,
            },
        );
    }

    /// Number of live entries (all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant, SimRowCache};
    use fui_graph::GraphBuilder;
    use fui_landmarks::LandmarkIndex;
    use fui_taxonomy::{SimMatrix, TopicSet};

    fn snap(graph_gen: u64, slot_versions: Vec<u64>) -> Snapshot {
        shard_snap(0, graph_gen, slot_versions)
    }

    fn shard_snap(shard: u32, graph_gen: u64, slot_versions: Vec<u64>) -> Snapshot {
        let mut b = GraphBuilder::new();
        b.add_node(TopicSet::empty());
        let graph = std::sync::Arc::new(b.build());
        let authority = std::sync::Arc::new(AuthorityIndex::build(&graph));
        let sim = SimMatrix::opencalais();
        let sim_rows = std::sync::Arc::new(SimRowCache::build(&graph, &sim));
        let params = ScoreParams::default();
        let variant = ScoreVariant::Full;
        let p = fui_core::Propagator::with_sim_cache(
            &graph,
            &authority,
            std::sync::Arc::clone(&sim_rows),
            params,
            variant,
        );
        let index = std::sync::Arc::new(LandmarkIndex::build(&p, vec![], 10));
        Snapshot {
            shard,
            epoch: 0,
            graph_gen,
            slot_versions,
            graph,
            authority,
            sim_rows,
            index,
            params,
            variant,
        }
    }

    fn key(user: u32) -> CacheKey {
        CacheKey {
            user,
            topic: 0,
            top_n: 10,
        }
    }

    fn val() -> Arc<Vec<(NodeId, f64)>> {
        Arc::new(vec![(NodeId(1), 0.5)])
    }

    #[test]
    fn hit_requires_matching_graph_gen() {
        let cache = ResultCache::new(8, 2);
        let s0 = snap(0, vec![0]);
        cache.insert(
            key(1),
            val(),
            CacheStamp {
                shard: 0,
                graph_gen: 0,
                met: vec![],
            },
        );
        assert!(cache.get(key(1), &s0).is_some());
        let s1 = snap(1, vec![0]);
        assert!(cache.get(key(1), &s1).is_none(), "rotation invalidates");
        assert!(cache.is_empty(), "stale entry dropped on probe");
    }

    #[test]
    fn slot_version_bump_kills_only_dependents() {
        let cache = ResultCache::new(8, 2);
        cache.insert(
            key(1),
            val(),
            CacheStamp {
                shard: 0,
                graph_gen: 0,
                met: vec![(0, 0)],
            },
        );
        cache.insert(
            key(2),
            val(),
            CacheStamp {
                shard: 0,
                graph_gen: 0,
                met: vec![(1, 0)],
            },
        );
        let s = snap(0, vec![7, 0]); // slot 0 refreshed
        assert!(cache.get(key(1), &s).is_none(), "met slot 0: dead");
        assert!(cache.get(key(2), &s).is_some(), "met slot 1 only: alive");
    }

    #[test]
    fn refresh_on_one_shard_leaves_other_shards_entries_alive() {
        // Sharded serving: each shard stamps entries with its own id,
        // and staggered publication means shard B may still serve the
        // pre-refresh slot versions after shard A already published
        // bumped ones. A refresh that invalidates shard A's entries
        // must leave shard B's untouched — and an entry can never
        // validate against another shard's snapshot at all, even when
        // the slot/version numbers happen to agree.
        let cache_a = ResultCache::new(8, 2);
        let cache_b = ResultCache::new(8, 2);
        let stamp = |shard| CacheStamp {
            shard,
            graph_gen: 0,
            met: vec![(0, 0)],
        };
        cache_a.insert(key(1), val(), stamp(0));
        cache_b.insert(key(1), val(), stamp(1));

        // Refresh bumps slot 0 fleet-wide; shard A has published the
        // new versions, shard B's publish has not landed yet.
        let snap_a = shard_snap(0, 0, vec![1]);
        let snap_b = shard_snap(1, 0, vec![0]);
        assert!(
            cache_a.get(key(1), &snap_a).is_none(),
            "shard A met the refreshed slot: dead"
        );
        assert!(
            cache_b.get(key(1), &snap_b).is_some(),
            "shard B still serves its pre-refresh snapshot: alive"
        );

        // Cross-shard validation is impossible by construction: shard
        // B's entry against shard A's snapshot misses even where the
        // version vector would match.
        let alien = shard_snap(0, 0, vec![0]);
        cache_b.insert(key(2), val(), stamp(1));
        assert!(
            cache_b.get(key(2), &alien).is_none(),
            "stamp from shard 1 validated against shard 0"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2, 1); // one shard, two entries
        let s = snap(0, vec![]);
        let stamp = || CacheStamp {
            shard: 0,
            graph_gen: 0,
            met: vec![],
        };
        cache.insert(key(1), val(), stamp());
        cache.insert(key(2), val(), stamp());
        assert!(cache.get(key(1), &s).is_some()); // 1 now most recent
        cache.insert(key(3), val(), stamp()); // evicts 2
        assert!(cache.get(key(1), &s).is_some());
        assert!(cache.get(key(2), &s).is_none());
        assert!(cache.get(key(3), &s).is_some());
    }
}
