//! The sharded fleet: N candidate-partitioned serving lanes behind one
//! scatter/gather router.
//!
//! # Why candidate partitioning is bit-exact
//!
//! A recommendation score is a per-candidate `f64` accumulation: direct
//! contributions from the bounded exploration plus composition terms
//! through landmark entries. [`ShardedService`] partitions the
//! *candidate space* — every node is owned by exactly one shard (a
//! deterministic [`Partition`] over the node-id space) — and each shard
//! accumulates the full sum for exactly its owned candidates, in the
//! exact unsharded order:
//!
//! * the shard's [`LandmarkIndex::filtered`] slice keeps the full
//!   landmark mask and slot table (so exploration, pruning and the
//!   met-landmark set are identical on every shard) but filters the
//!   inverted lists to owned candidates;
//! * the recommender's `candidate_mask` filters direct contributions
//!   the same way.
//!
//! Per-shard top-k lists therefore rank *disjoint* candidate sets, and
//! merging them through [`select_top_k`]'s total order (score
//! descending, id ascending) reproduces the unsharded answer bit for
//! bit — including at score ties. The graph, authority index and
//! similarity rows are **shared** (`Arc`) across shards: what is
//! partitioned is the per-candidate accumulation and index mass, not
//! the read-only graph state.
//!
//! # Scatter sets
//!
//! A query `(u, t)` only needs the shards that can contribute a
//! candidate: shards owning a node of `u`'s `explore_depth`-hop
//! out-vicinity (direct contributions — answered by the [`CutTable`]
//! without touching second-hop adjacency), shards whose slice has any
//! stored list for topic `t`, and shards with any topological list.
//! Composition-heavy configurations thus scatter wide (often all N) —
//! `service.shard.fanout` records the truth — while vicinity-dominated
//! queries stay narrow. When the plan has raced a publish (pinned
//! epochs disagree with the plan's), the router falls back to
//! all-shard scatter, which is always exact: extra shards only ever
//! contribute candidates they own.
//!
//! # Staggered rotation
//!
//! Mutations journal and apply once at the fleet master (staleness
//! accounting must be shard-count-invariant for answers to be), but
//! every publish walks the shards in *staggered* order — most pending
//! recorded changes first, shard id breaking ties — swapping one
//! shard's snapshot pointer at a time with no fleet-wide pause.
//! In-flight queries keep whatever mix of pinned snapshots they hold.
//!
//! # Durability
//!
//! One fleet directory holds the snapshots (same codec as the
//! unsharded [`Service`](crate::Service)) and a fleet journal carrying
//! `Rotate`/`Refresh`; each shard gets `shard-NNNN/journal.fuiwal`
//! carrying the `Change` records it owns. A change touching a cut edge
//! is journaled to **both** endpoint owners' WALs; restore merges all
//! journals by sequence number (duplicates collapse), so one torn
//! shard WAL loses nothing the twin still holds. The partition and the
//! slices are pure functions of the restored graph — they are
//! re-derived, never persisted — and a directory written by any shard
//! count restores under any other: sharding is answer-invisible.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use fui_core::topk::select_top_k;
use fui_core::{AuthorityIndex, PropWorkspace, Propagator, ScoreParams, ScoreVariant, SimRowCache};
use fui_graph::{CutTable, NodeId, Partition, PartitionStrategy, SocialGraph};
use fui_landmarks::{ApproxRecommender, DynamicLandmarks, EdgeChange, Exploration, LandmarkIndex};
use fui_obs::{
    Counter, LatencyParts, RequestTrace, SloReport, TraceCapture, TraceEventKind, TraceOutcome,
};
use fui_taxonomy::{SimMatrix, Topic};

use crate::batch::{trace_meta, Pending, Ticket};
use crate::cache::CacheStamp;
use crate::durable::{self, JournalOp, JournalRecord, SnapshotState};
use crate::service::{
    key_of, prune_snapshots, validate, Reply, Request, RestoreError, Served, ServiceConfig,
    ServiceMetrics,
};
use crate::shard::{FleetStatus, Shard};
use crate::snapshot::{apply_changes, Snapshot};

/// A shared, immutable ranked recommendation list — the unit the
/// cache stores and the scatter/gather lanes pass around.
type RankedList = Arc<Vec<(NodeId, f64)>>;

/// How a [`ShardedService`] splits the candidate space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards (1 ..= [`fui_graph::partition::MAX_SHARDS`]).
    pub shards: usize,
    /// Owner-map strategy.
    pub strategy: PartitionStrategy,
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        ShardSpec {
            shards: 1,
            strategy: PartitionStrategy::Hash,
        }
    }
}

impl ShardSpec {
    /// A spec with `shards` shards under `strategy`.
    pub fn new(shards: usize, strategy: PartitionStrategy) -> ShardSpec {
        ShardSpec { shards, strategy }
    }
}

/// Subdirectory of the fleet durability dir holding shard `s`'s WAL.
fn shard_dir(dir: &Path, s: u32) -> PathBuf {
    dir.join(format!("shard-{s:04}"))
}

/// Fleet-wide `service.shard.*` handles (the per-shard `.N.` handles
/// live on each [`Shard`]).
struct FleetMetrics {
    svc: ServiceMetrics,
    /// Total shards scattered to, over all requests.
    fanout: Counter,
    /// Per-shard query executions (one request on three shards = 3).
    queries: Counter,
    /// Shared explorations run (one per missed query per pinned
    /// generation — `queries / explorations` is the exploration
    /// dedup factor the scatter/gather router buys).
    explorations: Counter,
    /// Cross-shard top-k merges performed.
    merges: Counter,
    /// Cut edges counted at each scatter-plan build (cumulative over
    /// rebuilds — the bench gate asserts exact equality of the sum).
    cut_edges: Counter,
}

impl FleetMetrics {
    fn new() -> FleetMetrics {
        FleetMetrics {
            svc: ServiceMetrics::new(),
            fanout: fui_obs::counter("service.shard.fanout"),
            queries: fui_obs::counter("service.shard.queries"),
            explorations: fui_obs::counter("service.shard.explorations"),
            merges: fui_obs::counter("service.shard.merges"),
            cut_edges: fui_obs::counter("service.shard.cut_edges"),
        }
    }
}

/// The precomputed scatter decision state, rebuilt under the master
/// lock on every rotate/refresh and epoch-stamped on every publish so
/// the read path can tell whether it matches its pinned snapshots.
struct ScatterPlan {
    /// Epoch this plan was built for — must equal the pinned epoch of
    /// *every* scattered-to snapshot for the narrow plan to be exact.
    epoch: u64,
    /// Cut-edge replication table for the plan's graph generation.
    cut: Arc<CutTable>,
    /// Cut-edge count for the plan's graph generation.
    cut_edges: u64,
    /// Bitmask of all live shards.
    all: u64,
    /// Per topic: shards whose slice stores any list for it.
    topic: Vec<u64>,
    /// Shards whose slice stores any topological list.
    topo: u64,
    /// Exploration deeper than the cut table covers (depth > 2): the
    /// vicinity term degenerates to all-shard.
    deep: bool,
}

impl ScatterPlan {
    fn build(
        epoch: u64,
        cut: Arc<CutTable>,
        cut_edges: u64,
        slices: &[Arc<LandmarkIndex>],
        deep: bool,
    ) -> ScatterPlan {
        let n = slices.len();
        let all = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut topic = vec![0u64; Topic::ALL.len()];
        let mut topo = 0u64;
        for (s, slice) in slices.iter().enumerate() {
            let bit = 1u64 << s;
            for slot in 0..slice.len() {
                let e = slice.entry_at(slot);
                for (t, recs) in e.recs.iter().enumerate() {
                    if !recs.is_empty() {
                        topic[t] |= bit;
                    }
                }
                if !e.topo.is_empty() {
                    topo |= bit;
                }
            }
        }
        ScatterPlan {
            epoch,
            cut,
            cut_edges,
            all,
            topic,
            topo,
            deep,
        }
    }

    /// The shards query `(u, t)` must reach. `lo`/`hi` are the min/max
    /// epochs of the pinned snapshots: any disagreement with the plan's
    /// epoch means a publish raced this batch, and the router scatters
    /// everywhere (always exact, never narrow).
    fn scatter(&self, graph: &SocialGraph, u: NodeId, t: Topic, lo: u64, hi: u64) -> u64 {
        if lo != hi || self.epoch != hi {
            return self.all;
        }
        let vicinity = if self.deep {
            self.all
        } else {
            self.cut.two_hop(graph, u)
        };
        (vicinity | self.topic[t.index()] | self.topo) & self.all
    }
}

/// The write side of fleet durability: fleet snapshots + fleet journal
/// (`Rotate`/`Refresh`), one change journal per shard.
struct FleetSink {
    dir: PathBuf,
    wal: std::fs::File,
    shard_wals: Vec<std::fs::File>,
}

fn append_frame(f: &mut std::fs::File, frame: &[u8]) -> std::io::Result<()> {
    f.write_all(frame)?;
    f.flush()?;
    fui_obs::counter("snapshot.persist.journal_appends").incr();
    fui_obs::counter("snapshot.persist.journal_bytes").add(frame.len() as u64);
    Ok(())
}

impl FleetSink {
    /// Journals a fleet-wide op (rotate/refresh) to the fleet WAL.
    fn append_fleet(&mut self, seq: u64, op: &JournalOp) -> std::io::Result<()> {
        append_frame(&mut self.wal, &durable::encode_record(seq, op))
    }

    /// Journals a change to its owning shard's WAL — and to the other
    /// endpoint's owner too when the edge is cut, so either WAL alone
    /// can torn-tail without losing the record.
    fn append_change(
        &mut self,
        seq: u64,
        change: EdgeChange,
        a: usize,
        b: usize,
    ) -> std::io::Result<()> {
        let frame = durable::encode_record(seq, &JournalOp::Change(change));
        append_frame(&mut self.shard_wals[a], &frame)?;
        if b != a {
            append_frame(&mut self.shard_wals[b], &frame)?;
        }
        Ok(())
    }
}

/// Mutable fleet master state — one lock, never taken by queries.
/// Mirrors the unsharded service's master exactly (same staleness
/// accounting, same epoch discipline — answers must not depend on the
/// shard count) plus the per-shard index slices derived from it.
struct FleetMaster {
    graph: Arc<SocialGraph>,
    authority: Arc<AuthorityIndex>,
    sim_rows: Arc<SimRowCache>,
    index: Arc<LandmarkIndex>,
    /// Ownership-filtered projections of `index`, one per shard.
    slices: Vec<Arc<LandmarkIndex>>,
    sim: SimMatrix,
    dynamic: DynamicLandmarks,
    pending: Vec<EdgeChange>,
    epoch: u64,
    graph_gen: u64,
    slot_versions: Vec<u64>,
    params: ScoreParams,
    variant: ScoreVariant,
    applied_seq: u64,
    durable: Option<FleetSink>,
}

impl FleetMaster {
    fn shard_snapshot(&self, s: usize) -> Snapshot {
        Snapshot {
            shard: s as u32,
            epoch: self.epoch,
            graph_gen: self.graph_gen,
            slot_versions: self.slot_versions.clone(),
            graph: Arc::clone(&self.graph),
            authority: Arc::clone(&self.authority),
            sim_rows: Arc::clone(&self.sim_rows),
            index: Arc::clone(&self.slices[s]),
            params: self.params,
            variant: self.variant,
        }
    }

    /// The full durable image — identical layout to the unsharded
    /// service's (the codec does not know about shards; the partition
    /// is re-derived at restore).
    fn snapshot_state(&self) -> SnapshotState {
        let (auth, followers_on, maxima) = self.authority.to_parts();
        SnapshotState {
            applied_seq: self.applied_seq,
            epoch: self.epoch,
            graph_gen: self.graph_gen,
            changes_seen: self.dynamic.changes_seen(),
            params: self.params,
            variant: self.variant,
            slot_versions: self.slot_versions.clone(),
            staleness: (0..self.slot_versions.len())
                .map(|s| self.dynamic.staleness_at(s))
                .collect(),
            pending: self.pending.clone(),
            graph: (*self.graph).clone(),
            auth: auth.to_vec(),
            followers_on: followers_on.to_vec(),
            max_followers_on: *maxima,
            index: self.dynamic.index().clone(),
        }
    }
}

fn build_slices(index: &Arc<LandmarkIndex>, partition: &Partition) -> Vec<Arc<LandmarkIndex>> {
    if partition.shards() == 1 {
        return vec![Arc::clone(index)];
    }
    (0..partition.shards() as u32)
        .map(|s| Arc::new(index.filtered(|v| partition.owner(v) == s)))
        .collect()
}

/// N partitioned serving lanes behind a scatter/gather router. The
/// public surface mirrors [`Service`](crate::Service) verb for verb and
/// answers bit-identically to it at every shard count — the
/// `service-sharded` conformance invariant holds it to exactly that.
pub struct ShardedService {
    master: Mutex<FleetMaster>,
    shards: Vec<Shard>,
    partition: Arc<Partition>,
    plan: RwLock<Arc<ScatterPlan>>,
    /// Node-id bound for owner lookups (node count never changes).
    nodes: usize,
    cfg: ServiceConfig,
    metrics: FleetMetrics,
    /// One propagation workspace per pool worker, persistent across
    /// batches. At paper scale a workspace is a multi-hundred-MB
    /// allocation; paying it per scattered compute task turns the
    /// parallel path into an mmap/page-fault storm that runs *slower*
    /// than one thread. Reuse is answer-invisible (the workspace
    /// sparse-resets between queries — the `service-workspace`
    /// conformance invariant pins that).
    workspaces: fui_exec::WorkerLocal<PropWorkspace>,
    /// Cumulative scatter/gather critical path: per batch, the wall
    /// time minus all parallel-lane busy time plus, per parallel
    /// region (probe, explore, compose), the slowest lane's — the
    /// batch latency on a host with at least as many cores as shards.
    /// Exact when the lanes actually ran serially (`FUI_THREADS=1`);
    /// with real parallelism it is clamped below wall. On a one-shard
    /// fleet every region has one lane, so this equals served wall
    /// time. [`FleetStatus::crit_ns`] surfaces it.
    crit_ns: AtomicU64,
}

impl ShardedService {
    /// Builds a fleet over `graph`: one shared precompute (authority,
    /// similarity rows, landmark index — identical to the unsharded
    /// build), then `spec.shards` ownership slices of it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: SocialGraph,
        sim: SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
        landmarks: Vec<NodeId>,
        stored_top_n: usize,
        cfg: ServiceConfig,
        spec: ShardSpec,
    ) -> ShardedService {
        let graph = Arc::new(graph);
        let authority = Arc::new(AuthorityIndex::build(&graph));
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        let propagator =
            Propagator::with_sim_cache(&graph, &authority, Arc::clone(&sim_rows), params, variant);
        let index = LandmarkIndex::build_auto(&propagator, landmarks, stored_top_n);
        let dynamic = DynamicLandmarks::with_policy(
            index.clone(),
            cfg.refresh_threshold,
            cfg.background_impact,
        );
        let index = Arc::new(index);
        let slots = index.len();
        let master = FleetMaster {
            graph,
            authority,
            sim_rows,
            index,
            slices: Vec::new(),
            sim,
            dynamic,
            pending: Vec::new(),
            epoch: 0,
            graph_gen: 0,
            slot_versions: vec![0; slots],
            params,
            variant,
            applied_seq: 0,
            durable: None,
        };
        ShardedService::assemble(master, cfg, spec)
    }

    fn assemble(mut master: FleetMaster, cfg: ServiceConfig, spec: ShardSpec) -> ShardedService {
        assert!(
            (1..=fui_graph::partition::MAX_SHARDS).contains(&spec.shards),
            "shard count {} out of range",
            spec.shards
        );
        let partition = Arc::new(Partition::build(&master.graph, spec.shards, spec.strategy));
        master.slices = build_slices(&master.index, &partition);
        let metrics = FleetMetrics::new();
        let cut = Arc::new(partition.cut_table(&master.graph));
        let cut_edges = partition.cut_edges_in(&master.graph);
        metrics.cut_edges.add(cut_edges);
        let plan = ScatterPlan::build(
            master.epoch,
            cut,
            cut_edges,
            &master.slices,
            cfg.explore_depth > 2,
        );
        let shards: Vec<Shard> = (0..spec.shards)
            .map(|s| {
                Shard::new(
                    s as u32,
                    master.shard_snapshot(s),
                    Arc::new(partition.owned_mask(s as u32)),
                    partition.edge_mass()[s],
                    &cfg,
                    &metrics.svc,
                )
            })
            .collect();
        // A restored fleet re-derives each shard's staggered-rotation
        // priority from the still-pending changes it carries.
        for c in &master.pending {
            let a = partition.owner(c.follower) as usize;
            let b = partition.owner(c.followee) as usize;
            shards[a].pending.fetch_add(1, Ordering::SeqCst);
            if b != a {
                shards[b].pending.fetch_add(1, Ordering::SeqCst);
            }
        }
        let nodes = master.graph.num_nodes();
        ShardedService {
            master: Mutex::new(master),
            shards,
            partition,
            plan: RwLock::new(Arc::new(plan)),
            nodes,
            cfg,
            metrics,
            workspaces: fui_exec::WorkerLocal::new(),
            crit_ns: AtomicU64::new(0),
        }
    }

    /// [`ShardedService::new`], then durability: the fleet snapshot
    /// and journal plus one `shard-NNNN/` change journal per shard,
    /// all under `dir`. See the module docs for the layout.
    #[allow(clippy::too_many_arguments)]
    pub fn with_durability(
        graph: SocialGraph,
        sim: SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
        landmarks: Vec<NodeId>,
        stored_top_n: usize,
        cfg: ServiceConfig,
        spec: ShardSpec,
        dir: &Path,
    ) -> std::io::Result<ShardedService> {
        let fleet = ShardedService::new(
            graph,
            sim,
            params,
            variant,
            landmarks,
            stored_top_n,
            cfg,
            spec,
        );
        std::fs::create_dir_all(dir)?;
        {
            let mut m = fleet.master.lock().expect("fleet master poisoned");
            durable::write_snapshot_atomic(dir, &m.snapshot_state())?;
            let mut wal = std::fs::File::create(dir.join(durable::JOURNAL_FILE))?;
            wal.write_all(durable::WAL_MAGIC)?;
            let mut shard_wals = Vec::with_capacity(fleet.shards.len());
            for s in 0..fleet.shards.len() {
                let sd = shard_dir(dir, s as u32);
                std::fs::create_dir_all(&sd)?;
                let mut w = std::fs::File::create(sd.join(durable::JOURNAL_FILE))?;
                w.write_all(durable::WAL_MAGIC)?;
                shard_wals.push(w);
            }
            m.durable = Some(FleetSink {
                dir: dir.to_path_buf(),
                wal,
                shard_wals,
            });
        }
        Ok(fleet)
    }

    /// Warm-restarts a fleet from `dir`: newest valid fleet snapshot,
    /// then the fleet journal and every shard journal merged by
    /// sequence number (a change on a cut edge sits in both endpoint
    /// owners' WALs; the duplicate collapses). The partition and the
    /// slices are re-derived from the restored graph — `spec` may even
    /// differ from the writing fleet's, since sharding never shows in
    /// answers. Torn journal tails are dropped and truncated exactly
    /// like the unsharded restore.
    pub fn restore(
        dir: &Path,
        sim: SimMatrix,
        cfg: ServiceConfig,
        spec: ShardSpec,
    ) -> Result<ShardedService, RestoreError> {
        ShardedService::restore_inner(dir, sim, cfg, spec, true)
    }

    fn restore_inner(
        dir: &Path,
        sim: SimMatrix,
        cfg: ServiceConfig,
        spec: ShardSpec,
        attach: bool,
    ) -> Result<ShardedService, RestoreError> {
        let io_err = |e: std::io::Error| RestoreError::Io(e.to_string());
        let fallbacks = fui_obs::counter("snapshot.persist.fallbacks");
        let mut chosen = None;
        for (seq, path) in durable::list_snapshots(dir).map_err(io_err)? {
            let read_sp = fui_obs::Span::enter("snapshot.restore.read");
            let raw = std::fs::read(&path);
            read_sp.finish();
            let Ok(raw) = raw else {
                fallbacks.incr();
                continue;
            };
            match durable::decode_snapshot(bytes::Bytes::from(raw)) {
                Ok(state) if state.applied_seq == seq => {
                    chosen = Some(state);
                    break;
                }
                Ok(_) | Err(_) => fallbacks.incr(),
            }
        }
        let Some(state) = chosen else {
            return Err(RestoreError::NoValidSnapshot);
        };

        // One journal prefix per WAL: the fleet's, then each shard's.
        let torn_counter = fui_obs::counter("snapshot.persist.journal_torn");
        let mut wal_paths = vec![dir.join(durable::JOURNAL_FILE)];
        for s in 0..spec.shards {
            wal_paths.push(shard_dir(dir, s as u32).join(durable::JOURNAL_FILE));
        }
        let mut prefixes = Vec::with_capacity(wal_paths.len());
        let mut merged: std::collections::BTreeMap<u64, JournalRecord> =
            std::collections::BTreeMap::new();
        for path in &wal_paths {
            let raw = std::fs::read(path).unwrap_or_default();
            let (records, valid_len, torn) = if raw.is_empty() {
                (Vec::new(), 0, None)
            } else {
                durable::decode_journal_prefix(&raw)
            };
            if torn.is_some() {
                torn_counter.incr();
            }
            for r in records {
                merged.insert(r.seq, r);
            }
            prefixes.push((valid_len, torn.is_some()));
        }
        let records: Vec<JournalRecord> = merged.into_values().collect();

        let derive_sp = fui_obs::Span::enter("snapshot.restore.derive");
        let fleet = ShardedService::from_state(state, sim, cfg, spec);
        derive_sp.finish();
        let replayed = fleet.apply_journal(&records);
        fui_obs::counter("snapshot.persist.replayed").add(replayed as u64);
        fui_obs::counter("snapshot.persist.restores").incr();

        if attach {
            let reattach = |path: &Path, valid_len: usize, torn: bool| -> std::io::Result<_> {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                if valid_len < durable::WAL_MAGIC.len() {
                    // Missing or header-corrupt journal: start fresh.
                    let mut f = std::fs::File::create(path)?;
                    f.write_all(durable::WAL_MAGIC)?;
                    Ok(f)
                } else {
                    if torn {
                        // Drop the torn (never-acknowledged) tail so
                        // the next append starts at a record boundary.
                        let f = std::fs::OpenOptions::new().write(true).open(path)?;
                        f.set_len(valid_len as u64)?;
                    }
                    std::fs::OpenOptions::new().append(true).open(path)
                }
            };
            let mut files = Vec::with_capacity(wal_paths.len());
            for (path, &(valid_len, torn)) in wal_paths.iter().zip(&prefixes) {
                files.push(reattach(path, valid_len, torn).map_err(io_err)?);
            }
            let wal = files.remove(0);
            fleet.master.lock().expect("fleet master poisoned").durable = Some(FleetSink {
                dir: dir.to_path_buf(),
                wal,
                shard_wals: files,
            });
        }
        Ok(fleet)
    }

    fn from_state(
        state: SnapshotState,
        sim: SimMatrix,
        cfg: ServiceConfig,
        spec: ShardSpec,
    ) -> ShardedService {
        let graph = Arc::new(state.graph);
        let authority = Arc::new(AuthorityIndex::from_parts(
            state.auth,
            state.followers_on,
            state.max_followers_on,
        ));
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        let dynamic = DynamicLandmarks::restore(
            state.index.clone(),
            cfg.refresh_threshold,
            cfg.background_impact,
            state.staleness,
            state.changes_seen,
        );
        let master = FleetMaster {
            graph,
            authority,
            sim_rows,
            index: Arc::new(state.index),
            slices: Vec::new(),
            sim,
            dynamic,
            pending: state.pending,
            epoch: state.epoch,
            graph_gen: state.graph_gen,
            slot_versions: state.slot_versions,
            params: state.params,
            variant: state.variant,
            applied_seq: state.applied_seq,
            durable: None,
        };
        ShardedService::assemble(master, cfg, spec)
    }

    /// The configuration the fleet was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The spec the fleet was assembled under.
    pub fn spec(&self) -> ShardSpec {
        ShardSpec {
            shards: self.shards.len(),
            strategy: self.partition.strategy(),
        }
    }

    /// Max epoch over the shards' published snapshots (all equal
    /// outside a publish window).
    pub fn epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.store.load().epoch)
            .max()
            .unwrap_or(0)
    }

    /// Graph generation of the published snapshots.
    pub fn graph_gen(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.store.load().graph_gen)
            .max()
            .unwrap_or(0)
    }

    /// Live result-cache entries, summed over shards.
    pub fn cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.len()).sum()
    }

    /// Total submission-queue depth, summed over shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.batcher.depth()).sum()
    }

    /// The shard owning `u` (out-of-range users route to shard 0 and
    /// are rejected at validation).
    fn owner_shard(&self, u: NodeId) -> usize {
        if u.index() < self.nodes {
            self.partition.owner(u) as usize
        } else {
            0
        }
    }

    // ---- read path -----------------------------------------------

    /// Answers one request synchronously.
    pub fn call(&self, req: Request) -> Reply {
        self.call_many(std::slice::from_ref(&req))
            .pop()
            .expect("one reply per request")
    }

    /// Answers a slice of requests synchronously, coalescing them into
    /// `max_batch`-sized batches. Replies come back in request order.
    pub fn call_many(&self, reqs: &[Request]) -> Vec<Reply> {
        let mut replies = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(self.cfg.max_batch.max(1)) {
            let traces = chunk.iter().map(|_| TraceCapture::begin()).collect();
            replies.extend(self.answer_batch(chunk, traces));
        }
        replies
    }

    /// Enqueues a request on its owner shard's queue for the next
    /// [`pump`](Self::pump), shedding immediately if that queue is at
    /// capacity (the shed is charged to the owner shard).
    pub fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        let s = self.owner_shard(req.user);
        let r = self.shards[s]
            .batcher
            .submit(req, deadline, TraceCapture::begin());
        if r.is_err() {
            self.shards[s].shed.incr();
            self.shards[s].shed_queue_full.incr();
        }
        r
    }

    /// Drains up to `max_batch` requests from every shard's queue
    /// (shard id ascending), sheds the expired ones against their
    /// owner shard, and answers the rest as one scattered batch.
    /// Returns how many requests it answered.
    pub fn pump(&self) -> usize {
        let now = Instant::now();
        let mut live: Vec<Pending> = Vec::new();
        for shard in &self.shards {
            for p in shard.batcher.drain(self.cfg.max_batch) {
                if p.deadline.is_some_and(|d| now > d) {
                    self.metrics.svc.shed.incr();
                    self.metrics.svc.shed_deadline.incr();
                    shard.shed.incr();
                    shard.shed_deadline.incr();
                    if let Some(cap) = p.trace {
                        let queue_ns = u64::try_from(
                            now.saturating_duration_since(cap.started_at()).as_nanos(),
                        )
                        .unwrap_or(u64::MAX);
                        cap.finish(
                            trace_meta(&p.req),
                            TraceOutcome::ShedDeadline,
                            LatencyParts {
                                queue_ns,
                                ..LatencyParts::default()
                            },
                        );
                    }
                    let _ = p.tx.send(Reply::Overloaded);
                } else {
                    live.push(p);
                }
            }
        }
        let total = live.len();
        if total == 0 {
            return total;
        }
        let reqs: Vec<Request> = live.iter().map(|p| p.req).collect();
        let traces = live.iter_mut().map(|p| p.trace.take()).collect();
        let replies = self.answer_batch(&reqs, traces);
        for (p, reply) in live.into_iter().zip(replies) {
            let _ = p.tx.send(reply);
        }
        total
    }

    /// Answers one batch: plan scatter sets against the pinned
    /// snapshots, probe each scattered shard's cache, run the misses as
    /// one `fui-exec` fan-out *over shards* (queries are serial within
    /// a shard task — shards, not queries, are the unit of
    /// parallelism, so the reduction order is width-invariant), then
    /// merge per-shard partials through [`select_top_k`].
    ///
    /// A traced request's decomposition gains a `scatter` segment
    /// (scatter planning + cross-shard merge); the parts still sum to
    /// the recorded total exactly (assembly is the remainder).
    fn answer_batch(&self, reqs: &[Request], traces: Vec<Option<TraceCapture>>) -> Vec<Reply> {
        let started = Instant::now();
        let _span = fui_obs::span!("service.request");
        let snaps: Vec<Arc<Snapshot>> = self.shards.iter().map(|s| s.store.load()).collect();
        let plan = Arc::clone(&self.plan.read().expect("scatter plan poisoned"));
        let lo = snaps.iter().map(|s| s.epoch).min().unwrap_or(0);
        let hi = snaps.iter().map(|s| s.epoch).max().unwrap_or(0);
        self.metrics.svc.requests.add(reqs.len() as u64);
        self.metrics.svc.batch_size.record(reqs.len() as u64);

        let mut traces = traces;
        let tracing = traces.iter().any(Option::is_some);
        if tracing {
            for cap in traces.iter_mut().flatten() {
                cap.event(TraceEventKind::BatchJoin, reqs.len() as u64);
                cap.event(TraceEventKind::SnapshotPin, hi);
            }
        }
        let mut cache_ns = 0u64;
        let mut compute_ns = 0u64;
        let mut scatter_ns = 0u64;
        let clock = |on: bool| if on { Some(Instant::now()) } else { None };
        let lap = |t0: Option<Instant>, acc: &mut u64| {
            if let Some(t0) = t0 {
                *acc += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        };

        // Per-region lane accounting for the critical path: each
        // parallel region (probe, explore, compose) contributes its
        // lanes' total busy time and its slowest lane's. The batch's
        // critical path is `elapsed − Σ busy + Σ per-region max` —
        // what the batch costs on a host with `cores ≥ shards`, exact
        // when the lanes ran serially (`FUI_THREADS=1`).
        let mut lane_sum = 0u64;
        let mut lane_max = 0u64;

        // Phase 1: validate + scatter planning.
        let mut replies: Vec<Option<Reply>> = (0..reqs.len()).map(|_| None).collect();
        let mut scattered: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let t0 = clock(tracing);
        for (i, req) in reqs.iter().enumerate() {
            if let Err(why) = validate(req, &snaps[0]) {
                replies[i] = Some(Reply::Rejected(why));
                continue;
            }
            let mask = plan.scatter(&snaps[0].graph, req.user, req.topic, lo, hi);
            self.metrics.fanout.add(u64::from(mask.count_ones()));
            for (s, shard) in self.shards.iter().enumerate() {
                if mask & (1 << s) != 0 {
                    shard.requests.incr();
                    scattered[s].push(i);
                }
            }
        }
        lap(t0, &mut scatter_ns);

        // Phase 2: per-shard cache probes — one parallel lane per
        // scattered shard. Probing is lane work (stamp validation
        // walks the met-landmark list), so the router never
        // serializes it across shards.
        let probe_shards: Vec<usize> = scattered
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(s, _)| s)
            .collect();
        let t0 = clock(tracing);
        let probed: Vec<(Vec<Option<RankedList>>, u64)> = fui_exec::par_map(&probe_shards, |&s| {
            let lane = Instant::now();
            let shard = &self.shards[s];
            let out: Vec<Option<RankedList>> = scattered[s]
                .iter()
                .map(|&i| shard.cache.get(key_of(&reqs[i]), &snaps[s]))
                .collect();
            let busy = u64::try_from(lane.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shard.busy_ns.fetch_add(busy, Ordering::Relaxed);
            (out, busy)
        });
        lane_sum += probed.iter().map(|p| p.1).sum::<u64>();
        lane_max += probed.iter().map(|p| p.1).max().unwrap_or(0);

        // One slot per (request, scattered shard), shard id ascending.
        struct Slot {
            shard: usize,
            hit: bool,
            value: Option<RankedList>,
        }
        let mut slots: Vec<Vec<Slot>> = (0..reqs.len()).map(|_| Vec::new()).collect();
        let mut tasks: Vec<(usize, Vec<usize>)> =
            (0..self.shards.len()).map(|s| (s, Vec::new())).collect();
        for (&s, (values, _)) in probe_shards.iter().zip(&probed) {
            for (&i, value) in scattered[s].iter().zip(values) {
                if value.is_none() {
                    tasks[s].1.push(i);
                }
                slots[i].push(Slot {
                    shard: s,
                    hit: value.is_some(),
                    value: value.clone(),
                });
            }
        }
        if tracing {
            for i in 0..reqs.len() {
                if replies[i].is_some() {
                    continue;
                }
                let all_hit = slots[i].iter().all(|p| p.hit);
                if let Some(cap) = traces[i].as_mut() {
                    cap.event(TraceEventKind::CacheProbe, u64::from(all_hit));
                }
            }
        }
        lap(t0, &mut cache_ns);

        // Phase 3: compute misses. Exploration never reads the
        // candidate mask or the stored lists, and all slices of one
        // index share the landmark mask and the graph `Arc` at a given
        // generation (`build_slices`), so the router explores each
        // missed query *once* per pinned generation (a staggered
        // publish can pin shards at two generations mid-rotation) and
        // every shard composes from the shared exploration — the
        // redundancy that made a serial fleet cost `shards ×`
        // exploration is gone. Exploration fans out over `shards`
        // chunk lanes (a fleet's parallelism budget is its shard
        // count); composition, stamping and cache inserts stay in the
        // owning shard's lane.
        let tasks: Vec<(usize, Vec<usize>)> =
            tasks.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        if !tasks.is_empty() {
            self.metrics
                .queries
                .add(tasks.iter().map(|(_, v)| v.len() as u64).sum());
            if tracing {
                for (_, idxs) in &tasks {
                    for &i in idxs {
                        if let Some(cap) = traces[i].as_mut() {
                            cap.event(TraceEventKind::PropagateStart, idxs.len() as u64);
                        }
                    }
                }
            }
            let t0 = clock(tracing);
            // (generation, representative shard, missed queries).
            let mut groups: Vec<(u64, usize, Vec<usize>)> = Vec::new();
            for (s, idxs) in &tasks {
                let gen = snaps[*s].graph_gen;
                let g = match groups.iter().position(|(og, _, _)| *og == gen) {
                    Some(g) => g,
                    None => {
                        groups.push((gen, *s, Vec::new()));
                        groups.len() - 1
                    }
                };
                groups[g].2.extend(idxs.iter().copied());
            }
            for (_, _, qs) in &mut groups {
                qs.sort_unstable();
                qs.dedup();
            }
            self.metrics
                .explorations
                .add(groups.iter().map(|(_, _, qs)| qs.len() as u64).sum());
            let width = self.shards.len().max(1);
            let chunks: Vec<(usize, &[usize])> = groups
                .iter()
                .enumerate()
                .flat_map(|(g, (_, _, qs))| {
                    let per = qs.len().div_ceil(width).max(1);
                    qs.chunks(per).map(move |c| (g, c))
                })
                .collect();
            let explorations: Vec<(Vec<Exploration>, u64)> =
                fui_exec::par_map(&chunks, |(g, qs)| {
                    let lane = Instant::now();
                    let snap = &snaps[groups[*g].1];
                    let propagator = snap.propagator();
                    let mut rec = ApproxRecommender::new(&propagator, &snap.index);
                    rec.explore_depth = self.cfg.explore_depth;
                    let mut ws = self.workspaces.get_or(PropWorkspace::new);
                    let out: Vec<Exploration> = qs
                        .iter()
                        .map(|&i| rec.explore_with(&mut ws, reqs[i].user, reqs[i].topic))
                        .collect();
                    drop(ws);
                    let busy = u64::try_from(lane.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (out, busy)
                });
            lane_sum += explorations.iter().map(|e| e.1).sum::<u64>();
            lane_max += explorations.iter().map(|e| e.1).max().unwrap_or(0);
            let mut ex_of: HashMap<(usize, u64), Exploration> =
                HashMap::with_capacity(explorations.iter().map(|(v, _)| v.len()).sum());
            for ((g, qs), (out, _)) in chunks.iter().zip(explorations) {
                let gen = groups[*g].0;
                for (&i, ex) in qs.iter().zip(out) {
                    ex_of.insert((i, gen), ex);
                }
            }

            let computed: Vec<(Vec<RankedList>, u64)> = fui_exec::par_map(&tasks, |(s, idxs)| {
                let lane = Instant::now();
                let snap = &snaps[*s];
                let propagator = snap.propagator();
                let mut rec = ApproxRecommender::new(&propagator, &snap.index);
                rec.explore_depth = self.cfg.explore_depth;
                rec.candidate_mask = Some(self.shards[*s].owned.as_slice());
                let results: Vec<RankedList> = idxs
                    .iter()
                    .map(|&i| {
                        let ex = &ex_of[&(i, snap.graph_gen)];
                        let result = rec.compose_from(ex, reqs[i].topic, reqs[i].top_n);
                        // Stamping and caching are shard-local
                        // serving duties, so they run inside the
                        // shard's lane: the router's serial section
                        // stays planning and merges only.
                        let met: Vec<(u32, u64)> = result
                            .met_landmarks
                            .iter()
                            .map(|&l| {
                                let slot = snap.index.slot_of(l).expect("met node is a landmark");
                                (slot, snap.slot_versions[slot as usize])
                            })
                            .collect();
                        let value = Arc::new(result.recommendations);
                        self.shards[*s].cache.insert(
                            key_of(&reqs[i]),
                            Arc::clone(&value),
                            CacheStamp {
                                shard: *s as u32,
                                graph_gen: snap.graph_gen,
                                met,
                            },
                        );
                        value
                    })
                    .collect();
                let busy = u64::try_from(lane.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.shards[*s].busy_ns.fetch_add(busy, Ordering::Relaxed);
                (results, busy)
            });
            lane_sum += computed.iter().map(|c| c.1).sum::<u64>();
            lane_max += computed.iter().map(|c| c.1).max().unwrap_or(0);
            lap(t0, &mut compute_ns);

            // Phase 4: hand each fresh partial to its reply slot.
            let t0 = clock(tracing);
            for ((s, idxs), (results, _)) in tasks.iter().zip(computed) {
                for (&i, value) in idxs.iter().zip(results) {
                    let slot = slots[i]
                        .iter_mut()
                        .find(|slot| slot.shard == *s)
                        .expect("scattered slot exists");
                    slot.value = Some(value);
                }
            }
            lap(t0, &mut cache_ns);
        }

        // Phase 5: cross-shard merge. Per-shard partials rank disjoint
        // owned candidates, so `select_top_k`'s total order reassembles
        // the unsharded answer exactly.
        let t0 = clock(tracing);
        for (i, req) in reqs.iter().enumerate() {
            if replies[i].is_some() {
                continue;
            }
            let parts = &slots[i];
            let cached = parts.iter().all(|p| p.hit);
            let filled = |p: &Slot| Arc::clone(p.value.as_ref().expect("slot filled"));
            let recommendations = if parts.len() == 1 {
                filled(&parts[0])
            } else {
                self.metrics.merges.incr();
                Arc::new(select_top_k(
                    req.top_n,
                    parts
                        .iter()
                        .flat_map(|p| p.value.as_ref().expect("slot filled").iter().copied()),
                ))
            };
            replies[i] = Some(Reply::Result(Served {
                recommendations,
                epoch: hi,
                cached,
            }));
        }
        lap(t0, &mut scatter_ns);

        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.crit_ns.fetch_add(
            elapsed.saturating_sub(lane_sum) + lane_max,
            Ordering::Relaxed,
        );
        for _ in reqs {
            self.metrics.svc.request_latency.record(elapsed);
        }
        if tracing {
            let assembly_ns = elapsed
                .saturating_sub(cache_ns)
                .saturating_sub(compute_ns)
                .saturating_sub(scatter_ns);
            for (i, cap) in traces.into_iter().enumerate() {
                let Some(cap) = cap else { continue };
                let outcome = match replies[i].as_ref() {
                    Some(Reply::Result(s)) if s.cached => TraceOutcome::OkCached,
                    Some(Reply::Result(_)) => TraceOutcome::Ok,
                    _ => TraceOutcome::Rejected,
                };
                let queue_ns = u64::try_from(
                    started
                        .saturating_duration_since(cap.started_at())
                        .as_nanos(),
                )
                .unwrap_or(u64::MAX);
                cap.finish(
                    trace_meta(&reqs[i]),
                    outcome,
                    LatencyParts {
                        queue_ns,
                        assembly_ns,
                        compute_ns,
                        cache_ns,
                        scatter_ns,
                    },
                );
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    // ---- write path ----------------------------------------------

    /// Records one follow/unfollow. Identical semantics to the
    /// unsharded [`record`](crate::Service::record) — one fleet-wide
    /// staleness account, so answers stay shard-count-invariant — plus
    /// shard routing: the change journals to its owner shard's WAL (to
    /// both owners when the edge is cut) and bumps the owners'
    /// staggered-rotation priority.
    pub fn record(&self, change: EdgeChange) -> Result<(), String> {
        let mut m = self.master.lock().expect("fleet master poisoned");
        let n = m.graph.num_nodes() as u32;
        if change.follower.0 >= n || change.followee.0 >= n {
            return Err(format!("edge endpoints out of range (graph has {n} nodes)"));
        }
        if change.follower == change.followee {
            return Err("self-follows are not representable".to_owned());
        }
        let seq = m.applied_seq + 1;
        let a = self.partition.owner(change.follower) as usize;
        let b = self.partition.owner(change.followee) as usize;
        if let Some(sink) = m.durable.as_mut() {
            sink.append_change(seq, change, a, b)
                .map_err(|e| format!("journal append failed: {e}"))?;
        }
        m.applied_seq = seq;
        self.apply_change_inner(&mut m, change);
        Ok(())
    }

    fn apply_change_inner(&self, m: &mut FleetMaster, change: EdgeChange) {
        let a = self.partition.owner(change.follower) as usize;
        let b = self.partition.owner(change.followee) as usize;
        self.shards[a].pending.fetch_add(1, Ordering::SeqCst);
        if b != a {
            self.shards[b].pending.fetch_add(1, Ordering::SeqCst);
        }
        let slots = m.dynamic.index().len();
        let was: Vec<bool> = (0..slots).map(|s| m.dynamic.is_stale(s)).collect();
        m.dynamic.record(&change);
        m.pending.push(change);
        let newly: Vec<usize> = (0..slots)
            .filter(|&s| !was[s] && m.dynamic.is_stale(s))
            .collect();
        if !newly.is_empty() {
            for s in newly {
                m.slot_versions[s] += 1;
            }
            m.epoch += 1;
            // The slices and the cut table are unchanged — only the
            // plan's epoch stamp moves with this publish.
            self.bump_plan_epoch(m.epoch);
            self.publish_all(m, false);
        }
    }

    /// Number of changes recorded but not yet rotated in (fleet-wide).
    pub fn pending_changes(&self) -> usize {
        self.master
            .lock()
            .expect("fleet master poisoned")
            .pending
            .len()
    }

    /// Applies all pending edge changes and republishes every shard —
    /// staggered, busiest first. Same semantics as the unsharded
    /// [`rotate`](crate::Service::rotate); the cut table is rebuilt for
    /// the new edge set. Returns the new epoch.
    pub fn rotate(&self) -> u64 {
        let _span = fui_obs::span!("service.rotate");
        let mut m = self.master.lock().expect("fleet master poisoned");
        let seq = m.applied_seq + 1;
        if let Some(sink) = m.durable.as_mut() {
            sink.append_fleet(seq, &JournalOp::Rotate)
                .expect("journal append failed");
        }
        m.applied_seq = seq;
        let epoch = self.rotate_inner(&mut m);
        if m.durable.is_some() {
            self.persist_locked(&mut m).expect("snapshot write failed");
        }
        epoch
    }

    fn rotate_inner(&self, m: &mut FleetMaster) -> u64 {
        self.metrics.svc.rotations.incr();
        if !m.pending.is_empty() {
            let next = apply_changes(&m.graph, &m.pending);
            m.pending.clear();
            m.graph = Arc::new(next);
            m.authority = Arc::new(AuthorityIndex::build(&m.graph));
            m.sim_rows = Arc::new(SimRowCache::build(&m.graph, &m.sim));
        }
        m.graph_gen += 1;
        m.epoch += 1;
        self.rebuild_plan(m, true);
        self.publish_all(m, true);
        m.epoch
    }

    /// Recomputes every stale landmark, re-slices the refreshed index
    /// per shard and republishes — staggered, no fleet-wide pause.
    /// Returns how many entries were refreshed.
    pub fn refresh(&self) -> usize {
        let _span = fui_obs::span!("service.refresh");
        let mut m = self.master.lock().expect("fleet master poisoned");
        let seq = m.applied_seq + 1;
        if let Some(sink) = m.durable.as_mut() {
            sink.append_fleet(seq, &JournalOp::Refresh)
                .expect("journal append failed");
        }
        m.applied_seq = seq;
        self.refresh_inner(&mut m)
    }

    fn refresh_inner(&self, m: &mut FleetMaster) -> usize {
        let stale = m.dynamic.stale_slots();
        if stale.is_empty() {
            return 0;
        }
        let propagator = Propagator::with_sim_cache(
            &m.graph,
            &m.authority,
            Arc::clone(&m.sim_rows),
            m.params,
            m.variant,
        );
        let refreshed = m.dynamic.refresh_stale(&propagator);
        for &s in &stale {
            m.slot_versions[s] += 1;
        }
        m.index = Arc::new(m.dynamic.index().clone());
        m.slices = build_slices(&m.index, &self.partition);
        m.epoch += 1;
        self.rebuild_plan(m, false);
        self.publish_all(m, false);
        refreshed
    }

    /// Swaps in a plan rebuilt from the master's current slices; the
    /// cut table is recomputed only when the graph moved (`rebuild_cut`
    /// — rotations), otherwise the existing table is reused.
    fn rebuild_plan(&self, m: &FleetMaster, rebuild_cut: bool) {
        let (cut, cut_edges) = if rebuild_cut {
            let cut = Arc::new(self.partition.cut_table(&m.graph));
            let cut_edges = self.partition.cut_edges_in(&m.graph);
            self.metrics.cut_edges.add(cut_edges);
            (cut, cut_edges)
        } else {
            let old = self.plan.read().expect("scatter plan poisoned");
            (Arc::clone(&old.cut), old.cut_edges)
        };
        let plan = ScatterPlan::build(
            m.epoch,
            cut,
            cut_edges,
            &m.slices,
            self.cfg.explore_depth > 2,
        );
        *self.plan.write().expect("scatter plan poisoned") = Arc::new(plan);
    }

    fn bump_plan_epoch(&self, epoch: u64) {
        let mut w = self.plan.write().expect("scatter plan poisoned");
        *w = Arc::new(ScatterPlan {
            epoch,
            cut: Arc::clone(&w.cut),
            cut_edges: w.cut_edges,
            all: w.all,
            topic: w.topic.clone(),
            topo: w.topo,
            deep: w.deep,
        });
    }

    /// Publishes every shard's snapshot for the master's current state,
    /// staggered: shards with the most recorded-but-unrotated changes
    /// publish first (ties toward the lowest id), one atomic pointer
    /// swap each, never a fleet-wide pause. `reset_pending` (rotations)
    /// clears each shard's counter as its publish lands.
    fn publish_all(&self, m: &FleetMaster, reset_pending: bool) {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by_key(|&s| (Reverse(self.shards[s].pending.load(Ordering::SeqCst)), s));
        for s in order {
            self.shards[s].store.publish(m.shard_snapshot(s));
            self.shards[s].epoch_gauge.set(m.epoch as f64);
            if reset_pending {
                self.shards[s].pending.store(0, Ordering::SeqCst);
            }
        }
    }

    // ---- durability ----------------------------------------------

    /// Replays merged journal records into the fleet master. Identical
    /// semantics to the unsharded replay (skip at-or-below
    /// `applied_seq`, reject changes that no longer validate, never
    /// re-journal); returns how many records were applied.
    pub fn apply_journal(&self, records: &[JournalRecord]) -> usize {
        let mut m = self.master.lock().expect("fleet master poisoned");
        let mut applied = 0;
        for r in records {
            if r.seq <= m.applied_seq {
                continue;
            }
            m.applied_seq = r.seq;
            match r.op {
                JournalOp::Change(change) => {
                    let n = m.graph.num_nodes() as u32;
                    if change.follower.0 >= n
                        || change.followee.0 >= n
                        || change.follower == change.followee
                    {
                        fui_obs::counter("snapshot.persist.replay_rejected").incr();
                        continue;
                    }
                    self.apply_change_inner(&mut m, change);
                }
                JournalOp::Rotate => {
                    self.rotate_inner(&mut m);
                }
                JournalOp::Refresh => {
                    self.refresh_inner(&mut m);
                }
            }
            applied += 1;
        }
        applied
    }

    /// Writes a fleet snapshot (atomic temp-file + rename) and prunes
    /// old ones. Errors with `Unsupported` on a non-durable fleet.
    pub fn persist(&self) -> std::io::Result<(u64, usize)> {
        let mut m = self.master.lock().expect("fleet master poisoned");
        self.persist_locked(&mut m)
    }

    fn persist_locked(&self, m: &mut FleetMaster) -> std::io::Result<(u64, usize)> {
        let Some(dir) = m.durable.as_ref().map(|s| s.dir.clone()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "service is not durable",
            ));
        };
        let state = m.snapshot_state();
        let (_, bytes) = durable::write_snapshot_atomic(&dir, &state)?;
        prune_snapshots(&dir);
        Ok((state.applied_seq, bytes))
    }

    /// Dry-run warm restart against this fleet's own durability
    /// directory (nothing on disk is touched); reports the `(epoch,
    /// graph_gen, applied_seq)` a restored twin would reach.
    pub fn restore_probe(&self) -> Result<(u64, u64, u64), String> {
        let (dir, sim) = {
            let m = self.master.lock().expect("fleet master poisoned");
            let Some(sink) = m.durable.as_ref() else {
                return Err("service is not durable".to_owned());
            };
            (sink.dir.clone(), m.sim.clone())
        };
        let probe = ShardedService::restore_inner(&dir, sim, self.cfg, self.spec(), false)
            .map_err(|e| e.to_string())?;
        let applied = probe.applied_seq();
        Ok((probe.epoch(), probe.graph_gen(), applied))
    }

    /// Journal position of the last applied mutation.
    pub fn applied_seq(&self) -> u64 {
        self.master
            .lock()
            .expect("fleet master poisoned")
            .applied_seq
    }

    /// Whether this fleet journals and snapshots to disk.
    pub fn is_durable(&self) -> bool {
        self.master
            .lock()
            .expect("fleet master poisoned")
            .durable
            .is_some()
    }

    // ---- introspection -------------------------------------------

    /// Fleet-wide SLO checkpoint (the latency and shed arms run on the
    /// same `service.*` series the unsharded service uses).
    pub fn slo(&self) -> SloReport {
        self.metrics.svc.slo.observe()
    }

    /// The `n` slowest recently traced requests, slowest first.
    pub fn trace_slowest(&self, n: usize) -> Vec<RequestTrace> {
        fui_obs::trace::slowest(n)
    }

    /// Point-in-time fleet status: partitioner identity, current cut
    /// size, one row per shard.
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            strategy: self.partition.strategy().as_str(),
            cut_edges: self.plan.read().expect("scatter plan poisoned").cut_edges,
            crit_ns: self.crit_ns.load(Ordering::Relaxed),
            shards: self.shards.iter().map(|s| s.status()).collect(),
        }
    }
}
