//! Durable serving snapshots and the write-ahead mutation journal.
//!
//! The serving state is expensive to rebuild (authority index,
//! similarity rows, the landmark index), so a durable service persists
//! two artifacts under one directory:
//!
//! * **Snapshot files** `snapshot-<seq>.fuisnap` — a versioned binary
//!   image of the *entire* master state: graph CSR arenas
//!   ([`fui_graph::arena`]), the authority [`NodeColumns`] arenas, the
//!   landmark index (the PR-4 `FUILMK1` codec, embedded verbatim),
//!   per-slot cache versions, staleness accumulators, buffered pending
//!   changes, and the epoch / generation / journal-position counters.
//!   Written atomically: encode to `tmp-…`, then `rename`.
//! * **The journal** `journal.fuiwal` — an append-only log of every
//!   acknowledged mutation ([`JournalOp::Change`], [`JournalOp::Rotate`],
//!   [`JournalOp::Refresh`]), framed and checksummed per record. A
//!   record is appended *before* the in-memory state mutates, so warm
//!   restart replays `newest valid snapshot + journal tail` and lands
//!   bit-identically on the pre-crash state. Replay is idempotent:
//!   records at or below the snapshot's `applied_seq` are skipped.
//!
//! Both codecs follow the hardened decode discipline of
//! `fui-landmarks/persist.rs`: every declared count is bounded against
//! the bytes actually present **before** anything is allocated, file
//! checksums (FNV-1a) are verified before fields are trusted, and
//! structurally-impossible headers are rejected with typed
//! [`SnapshotError`] / [`JournalError`] values — never a panic, never
//! an unbounded allocation.
//!
//! [`NodeColumns`]: fui_graph::NodeColumns

use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::{arena, SocialGraph};
use fui_landmarks::{persist, ChangeKind, EdgeChange, LandmarkIndex};
use fui_taxonomy::{TopicSet, NUM_TOPICS};

/// Magic header of a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"FUISNAP1";

/// Magic header of the journal file.
pub const WAL_MAGIC: &[u8; 8] = b"FUIWAL1\n";

/// File name of the journal inside a durability directory.
pub const JOURNAL_FILE: &str = "journal.fuiwal";

/// Largest landmark-slot count a snapshot may declare.
pub const MAX_SLOTS: usize = 1 << 20;

/// Largest buffered pending-change count a snapshot may declare.
pub const MAX_PENDING: usize = 1 << 24;

/// Largest framed journal record (a corrupt length prefix may not
/// request more than this).
pub const MAX_RECORD_BYTES: usize = 1 << 16;

/// Integrity checksum of both formats: FNV-1a folded over 8-byte
/// little-endian words (tail bytes and the total length folded last).
/// Word folding keeps the xor-then-multiply bijection that detects
/// any single bit flip while running ~8x faster than the byte-wise
/// loop — the whole-snapshot pass is on the warm-restart path.
/// Exported so tests can re-fix checksums after splicing fields into
/// fixture files.
pub fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

// ---- snapshot codec --------------------------------------------------

/// Errors surfaced while decoding a snapshot file.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before the structure was complete.
    Truncated,
    /// The trailing FNV-1a checksum does not cover the bytes present.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// A header field declares a value no well-formed snapshot could
    /// hold (named field, declared value).
    ImplausibleHeader(&'static str, u64),
    /// The per-slot version table disagrees with the embedded landmark
    /// index on the slot count.
    SlotMismatch {
        /// Slots declared by the version table.
        slots: usize,
        /// Landmarks stored in the embedded index.
        landmarks: usize,
    },
    /// The embedded graph arena blob was rejected.
    Graph(arena::DecodeError),
    /// The embedded landmark index blob was rejected.
    Landmarks(persist::DecodeError),
    /// Bytes remained after the declared structure was fully read.
    TrailingBytes(usize),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a serving snapshot"),
            SnapshotError::Truncated => write!(f, "serving snapshot truncated"),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            SnapshotError::ImplausibleHeader(field, v) => {
                write!(f, "implausible header field {field} = {v}")
            }
            SnapshotError::SlotMismatch { slots, landmarks } => {
                write!(f, "{slots} slot versions for {landmarks} landmarks")
            }
            SnapshotError::Graph(e) => write!(f, "graph arenas: {e}"),
            SnapshotError::Landmarks(e) => write!(f, "landmark index: {e}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared structure")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The full decoded master state of a serving snapshot.
pub struct SnapshotState {
    /// Journal position: the snapshot reflects every record with
    /// `seq <= applied_seq`.
    pub applied_seq: u64,
    /// Published epoch at snapshot time.
    pub epoch: u64,
    /// Graph generation at snapshot time.
    pub graph_gen: u64,
    /// [`fui_landmarks::DynamicLandmarks`] change counter.
    pub changes_seen: u64,
    /// Scoring parameters.
    pub params: ScoreParams,
    /// Score variant.
    pub variant: ScoreVariant,
    /// Per-slot cache versions.
    pub slot_versions: Vec<u64>,
    /// Per-slot staleness accumulators.
    pub staleness: Vec<f64>,
    /// Changes recorded but not yet rotated in.
    pub pending: Vec<EdgeChange>,
    /// The follow graph.
    pub graph: SocialGraph,
    /// Authority score arena (`num_nodes * NUM_TOPICS` values).
    pub auth: Vec<f64>,
    /// Per-topic follower-count arena, same layout.
    pub followers_on: Vec<u32>,
    /// Per-topic global follower maxima.
    pub max_followers_on: [u32; NUM_TOPICS],
    /// The landmark index.
    pub index: LandmarkIndex,
}

fn variant_code(v: ScoreVariant) -> u8 {
    match v {
        ScoreVariant::Full => 0,
        ScoreVariant::NoAuthority => 1,
        ScoreVariant::NoSimilarity => 2,
        ScoreVariant::TopoOnly => 3,
    }
}

fn variant_from(code: u8) -> Option<ScoreVariant> {
    match code {
        0 => Some(ScoreVariant::Full),
        1 => Some(ScoreVariant::NoAuthority),
        2 => Some(ScoreVariant::NoSimilarity),
        3 => Some(ScoreVariant::TopoOnly),
        _ => None,
    }
}

fn put_change(buf: &mut BytesMut, c: &EdgeChange) {
    buf.put_u32_le(c.follower.0);
    buf.put_u32_le(c.followee.0);
    buf.put_u32_le(c.labels.mask());
    buf.put_u8(match c.kind {
        ChangeKind::Insert => 0,
        ChangeKind::Remove => 1,
    });
}

fn get_change(buf: &mut Bytes) -> Option<EdgeChange> {
    let follower = fui_graph::NodeId(buf.get_u32_le());
    let followee = fui_graph::NodeId(buf.get_u32_le());
    let labels = TopicSet::from_mask(buf.get_u32_le());
    match buf.get_u8() {
        0 => Some(EdgeChange::insert(follower, followee, labels)),
        1 => Some(EdgeChange::remove(follower, followee, labels)),
        _ => None,
    }
}

/// Serialises a full master state to bytes (checksum included).
pub fn encode_snapshot(state: &SnapshotState) -> Bytes {
    let graph_blob = arena::encode(&state.graph);
    let index_blob = persist::encode(&state.index, state.graph.num_nodes());
    let mut buf = BytesMut::with_capacity(
        256 + graph_blob.len()
            + index_blob.len()
            + state.auth.len() * 12
            + state.slot_versions.len() * 16
            + state.pending.len() * 13,
    );
    buf.put_slice(SNAP_MAGIC);
    buf.put_u64_le(state.applied_seq);
    buf.put_u64_le(state.epoch);
    buf.put_u64_le(state.graph_gen);
    buf.put_u64_le(state.changes_seen);
    buf.put_f64_le(state.params.alpha);
    buf.put_f64_le(state.params.beta);
    buf.put_f64_le(state.params.tolerance);
    buf.put_u32_le(state.params.max_depth);
    buf.put_u8(variant_code(state.variant));
    buf.put_u32_le(state.slot_versions.len() as u32);
    for (i, &v) in state.slot_versions.iter().enumerate() {
        buf.put_u64_le(v);
        buf.put_f64_le(state.staleness[i]);
    }
    buf.put_u32_le(state.pending.len() as u32);
    for c in &state.pending {
        put_change(&mut buf, c);
    }
    buf.put_u64_le(graph_blob.len() as u64);
    buf.put_slice(&graph_blob);
    buf.put_u64_le(state.auth.len() as u64);
    for &a in &state.auth {
        buf.put_f64_le(a);
    }
    for &c in &state.followers_on {
        buf.put_u32_le(c);
    }
    for &m in &state.max_followers_on {
        buf.put_u32_le(m);
    }
    buf.put_u64_le(index_blob.len() as u64);
    buf.put_slice(&index_blob);
    let sum = checksum(&buf.clone().freeze());
    buf.put_u64_le(sum);
    buf.freeze()
}

/// Decodes a snapshot file back into a [`SnapshotState`].
///
/// The trailing checksum is verified before any field is trusted, the
/// header counts are bounded before any array is allocated, the
/// embedded graph / authority / landmark blobs are length-prefixed and
/// re-validated by their own codecs, and cross-blob invariants (node
/// counts agree, slot counts agree, `graph_gen <= epoch`) are enforced
/// so a corrupt file can never materialise as inconsistent state.
pub fn decode_snapshot(buf: Bytes) -> Result<SnapshotState, SnapshotError> {
    fui_obs::counter("snapshot.persist.load_bytes").add(buf.remaining() as u64);
    if buf.remaining() < SNAP_MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if &buf[..8] != SNAP_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if buf.remaining() < SNAP_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    let body_len = buf.remaining() - 8;
    let stored = u64::from_le_bytes(buf[body_len..].try_into().expect("8 checksum bytes"));
    let sum_sp = fui_obs::Span::enter("snapshot.decode.checksum");
    let computed = checksum(&buf[..body_len]);
    sum_sp.finish();
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut buf = buf.slice(..body_len);
    buf.advance(SNAP_MAGIC.len());

    if buf.remaining() < 8 * 4 + 8 * 3 + 4 + 1 + 4 {
        return Err(SnapshotError::Truncated);
    }
    let applied_seq = buf.get_u64_le();
    let epoch = buf.get_u64_le();
    let graph_gen = buf.get_u64_le();
    let changes_seen = buf.get_u64_le();
    if graph_gen > epoch {
        // Rotation bumps both; a generation the epoch never reached
        // cannot come from a live service — the file is stale-or-forged.
        return Err(SnapshotError::ImplausibleHeader("graph_gen", graph_gen));
    }
    let params = ScoreParams {
        alpha: buf.get_f64_le(),
        beta: buf.get_f64_le(),
        tolerance: buf.get_f64_le(),
        max_depth: buf.get_u32_le(),
    };
    let variant_raw = buf.get_u8();
    let variant = variant_from(variant_raw).ok_or(SnapshotError::ImplausibleHeader(
        "variant",
        u64::from(variant_raw),
    ))?;

    let slots_raw = buf.get_u32_le();
    if slots_raw as usize > MAX_SLOTS {
        return Err(SnapshotError::ImplausibleHeader(
            "slots",
            u64::from(slots_raw),
        ));
    }
    let slots = slots_raw as usize;
    if buf.remaining() < slots * 16 {
        return Err(SnapshotError::Truncated);
    }
    let mut slot_versions = Vec::with_capacity(slots);
    let mut staleness = Vec::with_capacity(slots);
    for _ in 0..slots {
        slot_versions.push(buf.get_u64_le());
        staleness.push(buf.get_f64_le());
    }

    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let pending_raw = buf.get_u32_le();
    if pending_raw as usize > MAX_PENDING {
        return Err(SnapshotError::ImplausibleHeader(
            "pending",
            u64::from(pending_raw),
        ));
    }
    let n_pending = pending_raw as usize;
    if buf.remaining() < n_pending * 13 {
        return Err(SnapshotError::Truncated);
    }
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending
            .push(get_change(&mut buf).ok_or(SnapshotError::ImplausibleHeader("change_kind", 2))?);
    }

    let graph_blob = get_blob(&mut buf, "graph_bytes")?;
    let graph_sp = fui_obs::Span::enter("snapshot.decode.graph");
    let graph = arena::decode(graph_blob).map_err(SnapshotError::Graph)?;
    graph_sp.finish();
    let n = graph.num_nodes();
    for c in &pending {
        let limit = n as u32;
        if c.follower.0 >= limit || c.followee.0 >= limit {
            return Err(SnapshotError::ImplausibleHeader(
                "pending_endpoint",
                u64::from(c.follower.0.max(c.followee.0)),
            ));
        }
    }

    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let auth_len_raw = buf.get_u64_le();
    if auth_len_raw != (n * NUM_TOPICS) as u64 {
        // The arena must cover exactly the graph's nodes.
        return Err(SnapshotError::ImplausibleHeader("auth_len", auth_len_raw));
    }
    let auth_len = auth_len_raw as usize;
    if (buf.remaining() as u64) < auth_len as u64 * 12 + NUM_TOPICS as u64 * 4 {
        return Err(SnapshotError::Truncated);
    }
    let auth_sp = fui_obs::Span::enter("snapshot.decode.authority");
    let mut auth = Vec::with_capacity(auth_len);
    for _ in 0..auth_len {
        auth.push(buf.get_f64_le());
    }
    let mut followers_on = Vec::with_capacity(auth_len);
    for _ in 0..auth_len {
        followers_on.push(buf.get_u32_le());
    }
    let mut max_followers_on = [0u32; NUM_TOPICS];
    for m in &mut max_followers_on {
        *m = buf.get_u32_le();
    }
    auth_sp.finish();

    let index_blob = get_blob(&mut buf, "index_bytes")?;
    let (index, index_nodes) = persist::decode(index_blob).map_err(SnapshotError::Landmarks)?;
    if index_nodes != n {
        return Err(SnapshotError::ImplausibleHeader(
            "index_nodes",
            index_nodes as u64,
        ));
    }
    if index.len() != slots {
        return Err(SnapshotError::SlotMismatch {
            slots,
            landmarks: index.len(),
        });
    }
    if buf.remaining() > 0 {
        return Err(SnapshotError::TrailingBytes(buf.remaining()));
    }
    Ok(SnapshotState {
        applied_seq,
        epoch,
        graph_gen,
        changes_seen,
        params,
        variant,
        slot_versions,
        staleness,
        pending,
        graph,
        auth,
        followers_on,
        max_followers_on,
        index,
    })
}

/// Reads a `u64 len | len bytes` blob, bounding `len` by the bytes
/// actually present before slicing.
fn get_blob(buf: &mut Bytes, field: &'static str) -> Result<Bytes, SnapshotError> {
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let len = buf.get_u64_le();
    if len > buf.remaining() as u64 {
        return Err(SnapshotError::ImplausibleHeader(field, len));
    }
    let blob = buf.slice(..len as usize);
    buf.advance(len as usize);
    Ok(blob)
}

// ---- journal codec ---------------------------------------------------

/// One replayable mutation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JournalOp {
    /// One follow/unfollow recorded by `Service::record`.
    Change(EdgeChange),
    /// A `Service::rotate` call.
    Rotate,
    /// A `Service::refresh` call.
    Refresh,
}

/// One framed journal record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JournalRecord {
    /// Monotone sequence number (1-based; snapshots store the last
    /// applied one).
    pub seq: u64,
    /// The mutation.
    pub op: JournalOp,
}

/// Errors surfaced while decoding a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Missing or wrong magic header.
    BadMagic,
    /// The last record is incomplete or fails its checksum — the
    /// expected shape of a crash mid-append. Recovery keeps the valid
    /// prefix (`valid_len` bytes) and discards the tail.
    TornTail {
        /// Byte length of the longest valid record prefix.
        valid_len: usize,
    },
    /// A complete, checksum-valid record declares an impossible field
    /// (named field, declared value).
    ImplausibleRecord(&'static str, u64),
    /// Record sequence numbers must be strictly increasing.
    NonMonotoneSeq {
        /// Sequence of the preceding record.
        prev: u64,
        /// Offending sequence.
        next: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "not a mutation journal"),
            JournalError::TornTail { valid_len } => {
                write!(f, "torn journal tail after {valid_len} valid bytes")
            }
            JournalError::ImplausibleRecord(field, v) => {
                write!(f, "implausible journal record field {field} = {v}")
            }
            JournalError::NonMonotoneSeq { prev, next } => {
                write!(f, "journal sequence went {prev} -> {next}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn op_payload(op: &JournalOp) -> (u8, Vec<u8>) {
    match op {
        JournalOp::Change(c) => {
            let mut p = Vec::with_capacity(13);
            p.extend_from_slice(&c.follower.0.to_le_bytes());
            p.extend_from_slice(&c.followee.0.to_le_bytes());
            p.extend_from_slice(&c.labels.mask().to_le_bytes());
            p.push(match c.kind {
                ChangeKind::Insert => 0,
                ChangeKind::Remove => 1,
            });
            (0, p)
        }
        JournalOp::Rotate => (1, Vec::new()),
        JournalOp::Refresh => (2, Vec::new()),
    }
}

/// Encodes one framed record: `u32 len | u64 seq | u8 kind | payload |
/// u64 checksum`, where `len` counts `seq + kind + payload` and the
/// checksum covers everything before it (length prefix included).
pub fn encode_record(seq: u64, op: &JournalOp) -> Vec<u8> {
    let (kind, payload) = op_payload(op);
    let len = 9 + payload.len();
    let mut out = Vec::with_capacity(4 + len + 8);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&payload);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Encodes a whole journal (magic header + records) — fixture builder
/// for tests.
pub fn encode_journal(records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 32);
    out.extend_from_slice(WAL_MAGIC);
    for r in records {
        out.extend_from_slice(&encode_record(r.seq, &r.op));
    }
    out
}

/// Decodes as many valid records as the buffer holds, returning the
/// records, the byte length of the valid prefix, and the error that
/// stopped the scan (if any). Recovery uses this directly: a torn tail
/// keeps the prefix; the strict [`decode_journal`] wrapper turns any
/// stop into a typed error.
pub fn decode_journal_prefix(bytes: &[u8]) -> (Vec<JournalRecord>, usize, Option<JournalError>) {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..8] != WAL_MAGIC {
        return (Vec::new(), 0, Some(JournalError::BadMagic));
    }
    let mut records = Vec::new();
    let mut at = WAL_MAGIC.len();
    let mut prev_seq = 0u64;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < 4 {
            return (records, at, Some(JournalError::TornTail { valid_len: at }));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if !(9..=MAX_RECORD_BYTES).contains(&len) || rest.len() < 4 + len + 8 {
            return (records, at, Some(JournalError::TornTail { valid_len: at }));
        }
        let frame = &rest[..4 + len];
        let stored = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().expect("8 bytes"));
        if checksum(frame) != stored {
            return (records, at, Some(JournalError::TornTail { valid_len: at }));
        }
        let seq = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        let kind = frame[12];
        let payload = &frame[13..];
        let op = match (kind, payload.len()) {
            (0, 13) => {
                let follower = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes"));
                let followee = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
                let mask = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
                let labels = TopicSet::from_mask(mask);
                match payload[12] {
                    0 => JournalOp::Change(EdgeChange::insert(
                        fui_graph::NodeId(follower),
                        fui_graph::NodeId(followee),
                        labels,
                    )),
                    1 => JournalOp::Change(EdgeChange::remove(
                        fui_graph::NodeId(follower),
                        fui_graph::NodeId(followee),
                        labels,
                    )),
                    other => {
                        return (
                            records,
                            at,
                            Some(JournalError::ImplausibleRecord(
                                "change_kind",
                                u64::from(other),
                            )),
                        );
                    }
                }
            }
            (1, 0) => JournalOp::Rotate,
            (2, 0) => JournalOp::Refresh,
            (k, n) => {
                let (field, v) = if k > 2 {
                    ("kind", u64::from(k))
                } else {
                    ("payload_len", n as u64)
                };
                return (records, at, Some(JournalError::ImplausibleRecord(field, v)));
            }
        };
        if seq <= prev_seq {
            return (
                records,
                at,
                Some(JournalError::NonMonotoneSeq {
                    prev: prev_seq,
                    next: seq,
                }),
            );
        }
        prev_seq = seq;
        records.push(JournalRecord { seq, op });
        at += 4 + len + 8;
    }
    (records, at, None)
}

/// Strict journal decode: any malformed byte — torn tail included —
/// is a typed error.
pub fn decode_journal(bytes: &[u8]) -> Result<Vec<JournalRecord>, JournalError> {
    let (records, _, err) = decode_journal_prefix(bytes);
    match err {
        None => Ok(records),
        Some(e) => Err(e),
    }
}

// ---- file layout -----------------------------------------------------

/// File name of the snapshot at journal position `seq`.
pub fn snapshot_filename(seq: u64) -> String {
    format!("snapshot-{seq:020}.fuisnap")
}

/// Parses a snapshot file name back to its journal position.
pub fn parse_snapshot_filename(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".fuisnap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Snapshot files under `dir`, newest (highest seq) first.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_snapshot_filename) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(found)
}

/// Atomically writes `state` as `snapshot-<applied_seq>.fuisnap` under
/// `dir`: encode, write to a temp file, `rename` into place. Returns
/// the final path and the encoded size.
pub fn write_snapshot_atomic(
    dir: &Path,
    state: &SnapshotState,
) -> std::io::Result<(PathBuf, usize)> {
    let bytes = encode_snapshot(state);
    let final_path = dir.join(snapshot_filename(state.applied_seq));
    let tmp_path = dir.join(format!("tmp-{}", snapshot_filename(state.applied_seq)));
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    fui_obs::counter("snapshot.persist.saves").incr();
    fui_obs::counter("snapshot.persist.save_bytes").add(bytes.len() as u64);
    Ok((final_path, bytes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, NodeId};
    use fui_taxonomy::Topic;

    fn tiny_state() -> SnapshotState {
        let tech = TopicSet::single(Topic::Technology);
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(tech);
        }
        b.add_edge(NodeId(0), NodeId(1), tech);
        b.add_edge(NodeId(1), NodeId(2), tech);
        let graph = b.build();
        let n = graph.num_nodes();
        let authority = fui_core::AuthorityIndex::build(&graph);
        let (auth, followers, maxima) = authority.to_parts();
        let sim = fui_taxonomy::SimMatrix::opencalais();
        let params = ScoreParams::default();
        let propagator =
            fui_core::Propagator::new(&graph, &authority, &sim, params, ScoreVariant::Full);
        let index = fui_landmarks::LandmarkIndex::build(&propagator, vec![NodeId(1)], n);
        SnapshotState {
            applied_seq: 3,
            epoch: 5,
            graph_gen: 2,
            changes_seen: 7,
            params,
            variant: ScoreVariant::Full,
            slot_versions: vec![4],
            staleness: vec![0.25],
            pending: vec![EdgeChange::insert(NodeId(2), NodeId(3), tech)],
            auth: auth.to_vec(),
            followers_on: followers.to_vec(),
            max_followers_on: *maxima,
            graph,
            index,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let state = tiny_state();
        let back = decode_snapshot(encode_snapshot(&state)).unwrap();
        assert_eq!(back.applied_seq, 3);
        assert_eq!(back.epoch, 5);
        assert_eq!(back.graph_gen, 2);
        assert_eq!(back.changes_seen, 7);
        assert_eq!(back.graph, state.graph);
        assert_eq!(back.slot_versions, state.slot_versions);
        assert_eq!(back.staleness[0].to_bits(), state.staleness[0].to_bits());
        assert_eq!(back.pending, state.pending);
        assert_eq!(
            back.auth.iter().map(|a| a.to_bits()).collect::<Vec<_>>(),
            state.auth.iter().map(|a| a.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.followers_on, state.followers_on);
        assert_eq!(back.max_followers_on, state.max_followers_on);
        assert_eq!(back.index.len(), state.index.len());
    }

    #[test]
    fn snapshot_bit_flip_fails_checksum() {
        let raw = encode_snapshot(&tiny_state()).to_vec();
        let mut bad = raw.clone();
        bad[40] ^= 0x10;
        assert!(matches!(
            decode_snapshot(Bytes::from(bad)),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_stale_generation_is_rejected() {
        let mut state = tiny_state();
        state.graph_gen = state.epoch + 1;
        assert!(matches!(
            decode_snapshot(encode_snapshot(&state)),
            Err(SnapshotError::ImplausibleHeader("graph_gen", _))
        ));
    }

    #[test]
    fn snapshot_slot_mismatch_is_rejected() {
        let mut state = tiny_state();
        state.slot_versions.push(9);
        state.staleness.push(0.0);
        assert!(matches!(
            decode_snapshot(encode_snapshot(&state)),
            Err(SnapshotError::SlotMismatch {
                slots: 2,
                landmarks: 1
            })
        ));
    }

    #[test]
    fn journal_round_trips() {
        let tech = TopicSet::single(Topic::Technology);
        let records = vec![
            JournalRecord {
                seq: 1,
                op: JournalOp::Change(EdgeChange::insert(NodeId(0), NodeId(3), tech)),
            },
            JournalRecord {
                seq: 2,
                op: JournalOp::Rotate,
            },
            JournalRecord {
                seq: 3,
                op: JournalOp::Refresh,
            },
        ];
        let raw = encode_journal(&records);
        assert_eq!(decode_journal(&raw).unwrap(), records);
    }

    #[test]
    fn journal_torn_tail_keeps_the_valid_prefix() {
        let tech = TopicSet::single(Topic::Technology);
        let records = vec![
            JournalRecord {
                seq: 1,
                op: JournalOp::Change(EdgeChange::insert(NodeId(0), NodeId(3), tech)),
            },
            JournalRecord {
                seq: 2,
                op: JournalOp::Rotate,
            },
        ];
        let mut raw = encode_journal(&records);
        let clean = raw.len();
        // Half of a third record — the crash-mid-append shape.
        let partial = encode_record(3, &JournalOp::Refresh);
        raw.extend_from_slice(&partial[..partial.len() / 2]);
        assert_eq!(
            decode_journal(&raw),
            Err(JournalError::TornTail { valid_len: clean })
        );
        let (prefix, valid_len, err) = decode_journal_prefix(&raw);
        assert_eq!(prefix, records);
        assert_eq!(valid_len, clean);
        assert!(err.is_some());
    }

    #[test]
    fn journal_non_monotone_seq_is_rejected() {
        let records = vec![
            JournalRecord {
                seq: 2,
                op: JournalOp::Rotate,
            },
            JournalRecord {
                seq: 2,
                op: JournalOp::Refresh,
            },
        ];
        let raw = encode_journal(&records);
        assert_eq!(
            decode_journal(&raw),
            Err(JournalError::NonMonotoneSeq { prev: 2, next: 2 })
        );
    }

    #[test]
    fn snapshot_filenames_round_trip() {
        assert_eq!(parse_snapshot_filename(&snapshot_filename(42)), Some(42));
        assert_eq!(parse_snapshot_filename("snapshot-x.fuisnap"), None);
        assert_eq!(parse_snapshot_filename("journal.fuiwal"), None);
    }
}
