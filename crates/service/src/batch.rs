//! Micro-batching queue with admission control.
//!
//! Concurrent callers `submit` requests; a pump (either a test/bench
//! loop calling [`crate::Service::pump`] directly, or the net
//! frontend's window thread) drains the queue in arrival order and
//! answers one coalesced batch through
//! `ApproxRecommender::recommend_batch` on the `fui-exec` pool.
//!
//! Overload policy: the queue has a hard capacity; a submit against a
//! full queue is *shed* immediately with an explicit
//! [`Reply::Overloaded`](crate::Reply) — a caller is never
//! parked waiting for capacity, and every accepted request is
//! guaranteed a reply (the reply channel is owned by the queue entry,
//! so even a dropped service resolves waiters). Requests carry an
//! optional deadline checked at drain time; an expired request is shed
//! rather than computed.
//!
//! Every shed is attributed to an exact cause: `service.shed` is the
//! aggregate, with `service.shed.queue_full` (here, at submit),
//! `service.shed.deadline` (in the pump, at drain) and
//! `service.shed.disconnect` (in [`Ticket::wait`], when the queue
//! entry was dropped unanswered) partitioning it. Counter handles are
//! resolved once at construction, never name-looked-up per request.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use fui_obs::{Counter, LatencyParts, TraceCapture, TraceEventKind, TraceMeta, TraceOutcome};

use crate::service::{Reply, Request};

/// One queued request with its reply channel and (when tracing is
/// active) its in-flight trace capture.
pub(crate) struct Pending {
    pub(crate) req: Request,
    pub(crate) deadline: Option<Instant>,
    pub(crate) tx: mpsc::Sender<Reply>,
    pub(crate) trace: Option<TraceCapture>,
}

/// Receiver half of a submitted request: redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
    shed: Counter,
    shed_disconnect: Counter,
}

impl Ticket {
    /// Blocks until the pump answers. If the service is dropped with
    /// the request still queued, this resolves to
    /// [`Reply::Overloaded`] — a ticket never hangs — and the shed is
    /// attributed to `service.shed.disconnect` (nothing else counted
    /// it: the queue entry died without sending).
    pub fn wait(self) -> Reply {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => {
                self.shed.incr();
                self.shed_disconnect.incr();
                Reply::Overloaded
            }
        }
    }

    /// Nonblocking redemption for event-loop frontends: `Ok` with the
    /// reply once the pump has answered, `Err(self)` while it is still
    /// queued (the ticket is handed back so the caller can poll again
    /// after the next pump window). A dropped service resolves to
    /// [`Reply::Overloaded`] with the same `service.shed.disconnect`
    /// attribution as [`Ticket::wait`]; consuming `self` on resolution
    /// makes double-counting impossible.
    pub fn poll(self) -> Result<Reply, Ticket> {
        match self.rx.try_recv() {
            Ok(reply) => Ok(reply),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => {
                self.shed.incr();
                self.shed_disconnect.incr();
                Ok(Reply::Overloaded)
            }
        }
    }
}

/// The bounded submission queue.
pub(crate) struct Batcher {
    queue: Mutex<VecDeque<Pending>>,
    capacity: usize,
    shed: Counter,
    shed_queue_full: Counter,
    shed_disconnect: Counter,
}

impl Batcher {
    /// A queue of at most `capacity` entries, charging sheds to the
    /// caller-resolved counter handles.
    pub(crate) fn new(
        capacity: usize,
        shed: Counter,
        shed_queue_full: Counter,
        shed_disconnect: Counter,
    ) -> Batcher {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            shed,
            shed_queue_full,
            shed_disconnect,
        }
    }

    /// Enqueues a request, or sheds it if the queue is full. A live
    /// trace capture rides along in the queue entry; on a shed it is
    /// finished right here with the queue-full cause.
    pub(crate) fn submit(
        &self,
        req: Request,
        deadline: Option<Instant>,
        trace: Option<TraceCapture>,
    ) -> Result<Ticket, Reply> {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        if q.len() >= self.capacity {
            drop(q);
            self.shed.incr();
            self.shed_queue_full.incr();
            if let Some(cap) = trace {
                let queue_ns =
                    u64::try_from(cap.started_at().elapsed().as_nanos()).unwrap_or(u64::MAX);
                cap.finish(
                    trace_meta(&req),
                    TraceOutcome::ShedQueueFull,
                    LatencyParts {
                        queue_ns,
                        ..LatencyParts::default()
                    },
                );
            }
            return Err(Reply::Overloaded);
        }
        let mut trace = trace;
        if let Some(cap) = trace.as_mut() {
            cap.event(TraceEventKind::Enqueue, q.len() as u64);
        }
        let (tx, rx) = mpsc::channel();
        q.push_back(Pending {
            req,
            deadline,
            tx,
            trace,
        });
        Ok(Ticket {
            rx,
            shed: self.shed,
            shed_disconnect: self.shed_disconnect,
        })
    }

    /// Pops up to `max` requests in arrival order.
    pub(crate) fn drain(&self, max: usize) -> Vec<Pending> {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        let n = q.len().min(max);
        q.drain(..n).collect()
    }

    /// Current queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.queue.lock().expect("batch queue poisoned").len()
    }
}

/// A dropped service (a restart, in practice) must account for every
/// request still queued: each one is *sent* an explicit
/// [`Reply::Overloaded`] and charged to `service.shed` /
/// `service.shed.disconnect` right here. Without this, an entry whose
/// ticket was never redeemed would vanish from the counters entirely —
/// `answered + shed` would undercount accepted requests (the
/// [`Ticket::wait`] disconnect arm only fires if the waiter asks).
/// `wait` still backstops the send: a delivered `Overloaded` makes it
/// return `Ok`, so nothing is double-counted.
impl Drop for Batcher {
    fn drop(&mut self) {
        let Ok(mut q) = self.queue.lock() else {
            return;
        };
        for p in q.drain(..) {
            self.shed.incr();
            self.shed_disconnect.incr();
            if let Some(cap) = p.trace {
                let queue_ns =
                    u64::try_from(cap.started_at().elapsed().as_nanos()).unwrap_or(u64::MAX);
                cap.finish(
                    trace_meta(&p.req),
                    TraceOutcome::ShedDisconnect,
                    LatencyParts {
                        queue_ns,
                        ..LatencyParts::default()
                    },
                );
            }
            let _ = p.tx.send(Reply::Overloaded);
        }
    }
}

/// The trace identity of a request (obs speaks indices, not topics).
pub(crate) fn trace_meta(req: &Request) -> TraceMeta {
    TraceMeta {
        user: req.user.0,
        topic: req.topic.index() as u16,
        top_n: u32::try_from(req.top_n).unwrap_or(u32::MAX),
    }
}
