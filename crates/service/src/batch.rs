//! Micro-batching queue with admission control.
//!
//! Concurrent callers `submit` requests; a pump (either a test/bench
//! loop calling [`crate::Service::pump`] directly, or the net
//! frontend's window thread) drains the queue in arrival order and
//! answers one coalesced batch through
//! `ApproxRecommender::recommend_batch` on the `fui-exec` pool.
//!
//! Overload policy: the queue has a hard capacity; a submit against a
//! full queue is *shed* immediately with an explicit
//! [`Reply::Overloaded`](crate::Reply) — a caller is never
//! parked waiting for capacity, and every accepted request is
//! guaranteed a reply (the reply channel is owned by the queue entry,
//! so even a dropped service resolves waiters). Requests carry an
//! optional deadline checked at drain time; an expired request is shed
//! rather than computed.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use crate::service::{Reply, Request};

/// One queued request with its reply channel.
pub(crate) struct Pending {
    pub(crate) req: Request,
    pub(crate) deadline: Option<Instant>,
    pub(crate) tx: mpsc::Sender<Reply>,
}

/// Receiver half of a submitted request: redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the pump answers. If the service is dropped with
    /// the request still queued, this resolves to
    /// [`Reply::Overloaded`] — a ticket never hangs.
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Reply::Overloaded)
    }
}

/// The bounded submission queue.
pub(crate) struct Batcher {
    queue: Mutex<VecDeque<Pending>>,
    capacity: usize,
}

impl Batcher {
    pub(crate) fn new(capacity: usize) -> Batcher {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a request, or sheds it if the queue is full.
    pub(crate) fn submit(&self, req: Request, deadline: Option<Instant>) -> Result<Ticket, Reply> {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        if q.len() >= self.capacity {
            fui_obs::counter("service.shed").incr();
            return Err(Reply::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        q.push_back(Pending { req, deadline, tx });
        Ok(Ticket { rx })
    }

    /// Pops up to `max` requests in arrival order.
    pub(crate) fn drain(&self, max: usize) -> Vec<Pending> {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        let n = q.len().min(max);
        q.drain(..n).collect()
    }

    /// Current queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.queue.lock().expect("batch queue poisoned").len()
    }
}
