//! Epoch-based snapshot publication.
//!
//! The serving layer never mutates state a query can see. All the
//! pieces a query touches — the follow graph, the authority index, the
//! per-edge similarity rows and the landmark index — are bundled into
//! an immutable [`Snapshot`] behind `Arc`s, and the only mutation the
//! read path ever observes is the atomic swap of the *current* snapshot
//! pointer inside [`SnapshotStore`]. In-flight queries keep the `Arc`
//! they loaded, so rotation and landmark refresh never block a reader
//! and a reader never sees a half-applied update.
//!
//! Two version axes drive cache invalidation (see
//! [`crate::cache::ResultCache`]):
//!
//! * `graph_gen` — bumped by every graph rotation; a cached result is
//!   worthless on a different graph.
//! * `slot_versions[slot]` — bumped when landmark `slot`'s stored entry
//!   changes (refresh) or is flagged stale by the accumulation policy;
//!   a cached result only depends on the entries of the landmarks its
//!   exploration actually met, so results that avoided `slot` survive.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant, SimRowCache};
use fui_graph::{GraphBuilder, SocialGraph};
use fui_landmarks::{ChangeKind, EdgeChange, LandmarkIndex};
use fui_taxonomy::TopicSet;

/// One immutable, queryable publication of the serving state.
pub struct Snapshot {
    /// Which shard published this snapshot (0 on an unsharded
    /// [`crate::Service`]). Cache stamps carry the same id, so an
    /// entry computed on one shard can never validate against another
    /// shard's slot-version vector — slot indices are only unique
    /// within one shard once the store is partitioned.
    pub shard: u32,
    /// Monotone publication counter (every publish bumps it).
    pub epoch: u64,
    /// Graph generation: bumped by [`crate::Service::rotate`] only.
    /// Cache entries stamped with an older generation are dead.
    pub graph_gen: u64,
    /// Per-landmark-slot entry versions. Bumped when a slot's stored
    /// lists are refreshed, or when the staleness policy flags the
    /// slot (conservative invalidation: the entry is still served to
    /// *new* queries — the paper's stale-tolerant design — but cached
    /// results that composed through it stop being reused).
    pub slot_versions: Vec<u64>,
    /// The follow graph this snapshot answers against.
    pub graph: Arc<SocialGraph>,
    /// Authority index built on [`Self::graph`].
    pub authority: Arc<AuthorityIndex>,
    /// Per-edge similarity rows built on [`Self::graph`].
    pub sim_rows: Arc<SimRowCache>,
    /// Landmark index (possibly lazily stale — by design).
    pub index: Arc<LandmarkIndex>,
    /// Scoring parameters shared by every snapshot of a service.
    pub params: ScoreParams,
    /// Score variant shared by every snapshot of a service.
    pub variant: ScoreVariant,
}

impl Snapshot {
    /// A propagator borrowing this snapshot's graph state. Cheap: the
    /// similarity rows are `Arc`-shared, nothing is recomputed.
    pub fn propagator(&self) -> Propagator<'_> {
        Propagator::with_sim_cache(
            &self.graph,
            &self.authority,
            Arc::clone(&self.sim_rows),
            self.params,
            self.variant,
        )
    }
}

/// The atomically-swapped *current snapshot* pointer.
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

/// Publishes the snapshot's memory story to the metrics registry: the
/// compact-CSR per-node/per-edge footprint and the resident bytes of
/// each serving-side index. Capacity dashboards read these instead of
/// groping at RSS, which also counts transient build scratch.
fn record_footprint(s: &Snapshot) {
    let fp = s.graph.memory_footprint();
    fui_obs::gauge("graph.bytes_per_node").set(fp.bytes_per_node());
    fui_obs::gauge("graph.bytes_per_edge").set(fp.bytes_per_edge());
    fui_obs::gauge("snapshot.graph.bytes").set(fp.total_bytes() as f64);
    fui_obs::gauge("snapshot.authority.bytes").set(s.authority.size_bytes() as f64);
    fui_obs::gauge("snapshot.landmarks.bytes").set(s.index.resident_bytes() as f64);
}

impl SnapshotStore {
    /// A store publishing `initial`.
    pub fn new(initial: Snapshot) -> SnapshotStore {
        record_footprint(&initial);
        SnapshotStore {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Readers clone the `Arc` and drop the lock
    /// immediately, so a subsequent publish never waits on them.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot store poisoned"))
    }

    /// Swaps in a strictly newer snapshot.
    pub fn publish(&self, next: Snapshot) {
        record_footprint(&next);
        let mut cur = self.current.write().expect("snapshot store poisoned");
        assert!(
            next.epoch > cur.epoch,
            "epochs must advance: {} -> {}",
            cur.epoch,
            next.epoch
        );
        *cur = Arc::new(next);
    }
}

/// Applies a batch of follow/unfollow mutations to a graph, producing
/// the rebuilt post-update graph.
///
/// * [`ChangeKind::Insert`] unions the change's labels into the edge
///   (creating it if absent);
/// * [`ChangeKind::Remove`] deletes the edge entirely.
///
/// Later changes win over earlier ones on the same edge. The rebuild
/// goes through [`GraphBuilder`], which sorts edges by endpoint pair,
/// so the resulting CSR layout is deterministic regardless of change
/// order or map iteration order.
pub fn apply_changes(graph: &SocialGraph, changes: &[EdgeChange]) -> SocialGraph {
    let mut edges: HashMap<(u32, u32), TopicSet> = graph
        .edges()
        .map(|(u, v, labels)| ((u.0, v.0), labels))
        .collect();
    for c in changes {
        let key = (c.follower.0, c.followee.0);
        match c.kind {
            ChangeKind::Insert => {
                let slot = edges.entry(key).or_insert_with(TopicSet::empty);
                *slot = slot.union(c.labels);
            }
            ChangeKind::Remove => {
                edges.remove(&key);
            }
        }
    }
    let mut builder = GraphBuilder::with_capacity(graph.num_nodes(), edges.len());
    for u in graph.nodes() {
        builder.add_node(graph.node_labels(u));
    }
    for (&(u, v), &labels) in &edges {
        builder.add_edge(fui_graph::NodeId(u), fui_graph::NodeId(v), labels);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::NodeId;
    use fui_taxonomy::Topic;

    fn tiny() -> SocialGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(TopicSet::empty());
        }
        let tech = TopicSet::single(Topic::Technology);
        b.add_edge(NodeId(0), NodeId(1), tech);
        b.add_edge(NodeId(1), NodeId(2), tech);
        b.build()
    }

    #[test]
    fn insert_then_remove_round_trips() {
        let g = tiny();
        let tech = TopicSet::single(Topic::Technology);
        let g2 = apply_changes(&g, &[EdgeChange::insert(NodeId(2), NodeId(3), tech)]);
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.edge_label(NodeId(2), NodeId(3)).is_some());
        let g3 = apply_changes(&g2, &[EdgeChange::remove(NodeId(2), NodeId(3), tech)]);
        assert_eq!(g3.num_edges(), 2);
        assert!(g3.edge_label(NodeId(2), NodeId(3)).is_none());
    }

    #[test]
    fn insert_unions_labels_into_existing_edge() {
        let g = tiny();
        let health = TopicSet::single(Topic::Health);
        let g2 = apply_changes(&g, &[EdgeChange::insert(NodeId(0), NodeId(1), health)]);
        assert_eq!(g2.num_edges(), 2);
        let labels = g2.edge_label(NodeId(0), NodeId(1)).unwrap();
        assert!(labels.contains(Topic::Technology));
        assert!(labels.contains(Topic::Health));
    }

    #[test]
    fn later_changes_win() {
        let g = tiny();
        let tech = TopicSet::single(Topic::Technology);
        let g2 = apply_changes(
            &g,
            &[
                EdgeChange::remove(NodeId(0), NodeId(1), tech),
                EdgeChange::insert(NodeId(0), NodeId(1), tech),
            ],
        );
        assert!(g2.edge_label(NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn rebuild_is_deterministic() {
        let g = tiny();
        let tech = TopicSet::single(Topic::Technology);
        let changes = vec![
            EdgeChange::insert(NodeId(3), NodeId(0), tech),
            EdgeChange::remove(NodeId(1), NodeId(2), tech),
        ];
        let a = apply_changes(&g, &changes);
        let b = apply_changes(&g, &changes);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
