//! Sharded-fleet tests: bit-exact equivalence with the unsharded
//! engine, owner-shard admission, staggered publication bookkeeping,
//! and durable fleet restore (including shard-count changes and the
//! dual-WAL cut-edge journal).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId, PartitionStrategy, SocialGraph};
use fui_landmarks::EdgeChange;
use fui_service::{
    NetConfig, NetServer, Reply, Request, Served, Service, ServiceConfig, ShardSpec, ShardedService,
};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

/// A two-community graph: 0..5 a dense tech cluster, 6..9 a chain.
fn graph() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let tech = TopicSet::single(Topic::Technology);
    for _ in 0..10 {
        b.add_node(tech);
    }
    for u in 0..5u32 {
        for v in 0..5u32 {
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), tech);
            }
        }
    }
    for u in 5..9u32 {
        b.add_edge(NodeId(u), NodeId(u + 1), tech);
    }
    b.add_edge(NodeId(4), NodeId(5), tech);
    b.build()
}

fn service(cfg: ServiceConfig) -> Service {
    Service::new(
        graph(),
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
    )
}

fn fleet(cfg: ServiceConfig, spec: ShardSpec) -> ShardedService {
    ShardedService::new(
        graph(),
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
        spec,
    )
}

fn served(reply: Reply) -> Served {
    match reply {
        Reply::Result(s) => s,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn assert_same_bits(a: &Served, b: &Served, ctx: &str) {
    assert_eq!(a.epoch, b.epoch, "{ctx}: epochs diverge");
    assert_eq!(
        a.recommendations.len(),
        b.recommendations.len(),
        "{ctx}: lengths diverge"
    );
    for (x, y) in a.recommendations.iter().zip(b.recommendations.iter()) {
        assert_eq!(x.0, y.0, "{ctx}: node order diverges");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{ctx}: score bits diverge");
    }
}

fn all_queries() -> Vec<Request> {
    (0..10u32)
        .flat_map(|u| {
            [Topic::Technology, Topic::Health].map(|topic| Request {
                user: NodeId(u),
                topic,
                top_n: 5,
            })
        })
        .collect()
}

#[test]
fn fleet_matches_the_unsharded_service_through_mutations() {
    for strategy in [PartitionStrategy::Hash, PartitionStrategy::DegreeAware] {
        for shards in [1usize, 2, 4] {
            let cfg = ServiceConfig::default();
            let svc = service(cfg);
            let flt = fleet(cfg, ShardSpec::new(shards, strategy));
            let ctx = format!("{shards} shards / {}", strategy.as_str());
            let tech = TopicSet::single(Topic::Technology);

            let step = |svc: &Service, flt: &ShardedService, stage: &str| {
                for req in all_queries() {
                    let (a, b) = (served(svc.call(req)), served(flt.call(req)));
                    assert_same_bits(&a, &b, &format!("{ctx} [{stage}]"));
                }
            };

            step(&svc, &flt, "cold");
            step(&svc, &flt, "warm"); // replays: value bits must match either way

            for (u, v) in [(5u32, 7u32), (8, 0), (1, 9)] {
                let c = EdgeChange::insert(NodeId(u), NodeId(v), tech);
                svc.record(c).unwrap();
                flt.record(c).unwrap();
            }
            assert_eq!(svc.pending_changes(), flt.pending_changes());
            step(&svc, &flt, "post-record");

            assert_eq!(svc.rotate(), flt.rotate(), "{ctx}: rotate epoch");
            step(&svc, &flt, "post-rotate");

            let c = EdgeChange::remove(NodeId(0), NodeId(1), tech);
            svc.record(c).unwrap();
            flt.record(c).unwrap();
            assert_eq!(svc.refresh(), flt.refresh(), "{ctx}: refresh count");
            step(&svc, &flt, "post-refresh");

            assert_eq!(svc.snapshot().epoch, flt.epoch(), "{ctx}: final epoch");
            assert_eq!(svc.snapshot().graph_gen, flt.graph_gen());
        }
    }
}

#[test]
fn submit_routes_to_the_owner_shard_and_pump_answers() {
    let cfg = ServiceConfig {
        max_batch: 4,
        queue_capacity: 8,
        ..ServiceConfig::default()
    };
    let flt = fleet(cfg, ShardSpec::new(2, PartitionStrategy::Hash));
    let svc = service(cfg);
    let reqs: Vec<Request> = (0..8u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: 6,
        })
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|&r| flt.submit(r, None).expect("queues have room"))
        .collect();
    assert_eq!(flt.queue_depth(), 8);
    while flt.pump() > 0 {}
    assert_eq!(flt.queue_depth(), 0);
    let direct = svc.call_many(&reqs);
    for (t, d) in tickets.into_iter().zip(direct) {
        assert_same_bits(&served(t.wait()), &served(d), "pump vs unsharded call");
    }
}

#[test]
fn fleet_status_reports_per_shard_rows() {
    let flt = fleet(
        ServiceConfig::default(),
        ShardSpec::new(4, PartitionStrategy::DegreeAware),
    );
    for req in all_queries() {
        assert!(matches!(flt.call(req), Reply::Result(_)));
    }
    let tech = TopicSet::single(Topic::Technology);
    flt.record(EdgeChange::insert(NodeId(5), NodeId(7), tech))
        .unwrap();
    let status = flt.status();
    assert_eq!(status.strategy, "degree-aware");
    assert_eq!(status.shards.len(), 4);
    let owned: usize = status.shards.iter().map(|s| s.owned_nodes).sum();
    assert_eq!(owned, 10, "shards partition the node space");
    assert!(
        status.shards.iter().any(|s| s.requests > 0),
        "queries scattered somewhere"
    );
    let pending: u64 = status.shards.iter().map(|s| s.pending_changes).sum();
    assert!(
        (1..=2).contains(&pending),
        "one change charges one or both endpoint owners, got {pending}"
    );
    let rotated = flt.rotate();
    assert!(rotated > 0);
    let status = flt.status();
    assert!(
        status.shards.iter().all(|s| s.pending_changes == 0),
        "rotation publish resets the staggered priorities"
    );
    assert!(
        status.shards.iter().all(|s| s.epoch == rotated),
        "every shard published the rotation epoch"
    );
}

#[test]
fn net_frontend_serves_a_fleet_and_renders_shards() {
    let flt = Arc::new(fleet(
        ServiceConfig::default(),
        ShardSpec::new(2, PartitionStrategy::Hash),
    ));
    let svc = service(ServiceConfig::default());
    let server = NetServer::start(Arc::clone(&flt), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut ask = |cmd: &str, line: &mut String| {
        writeln!(writer, "{cmd}").expect("write");
        line.clear();
        reader.read_line(line).expect("read");
        line.trim_end().to_owned()
    };

    // REC through the fleet serves the unsharded bits over the wire.
    let rec = ask("REC 0 technology 3", &mut line);
    let direct = served(svc.call(Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 3,
    }));
    let parts: Vec<&str> = rec.split_whitespace().collect();
    assert!(rec.starts_with("OK REC "), "got {rec:?}");
    assert_eq!(parts.len(), 4 + direct.recommendations.len());
    for (tok, &(v, s)) in parts[4..].iter().zip(direct.recommendations.iter()) {
        let (node, score) = tok.split_once(':').expect("node:score");
        assert_eq!(node.parse::<u32>().unwrap(), v.0);
        assert_eq!(score.parse::<f64>().unwrap().to_bits(), s.to_bits());
    }

    assert_eq!(ask("FOLLOW 5 7 technology", &mut line), "OK FOLLOW");
    assert!(ask("ROTATE", &mut line).starts_with("OK ROTATE "));
    assert!(ask("EPOCH", &mut line).starts_with("OK EPOCH "));

    // SHARDS answers a header plus one S row per shard.
    let header = ask("SHARDS", &mut line);
    assert!(
        header.starts_with("OK SHARDS 2 strategy=hash cut_edges="),
        "got {header:?}"
    );
    for _ in 0..2 {
        line.clear();
        reader.read_line(&mut line).expect("read shard row");
        let row = line.trim_end();
        assert!(row.starts_with("S "), "got {row:?}");
        for field in [
            "epoch=",
            "gen=",
            "queue=",
            "pending=",
            "cache=",
            "owned=",
            "edge_mass=",
            "requests=",
            "shed=",
            "queue_full=",
            "deadline=",
            "latency_burn=",
            "shed_burn=",
        ] {
            assert!(row.contains(field), "{field} missing from {row:?}");
        }
    }

    writeln!(writer, "QUIT").expect("write");
    server.shutdown();
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fui-router-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durable_fleet_restores_warm_and_matches_a_twin() {
    let cfg = ServiceConfig::default();
    let spec = ShardSpec::new(2, PartitionStrategy::Hash);
    let dir = scratch("warm");
    let tech = TopicSet::single(Topic::Technology);
    let sim = SimMatrix::opencalais;

    let victim = ShardedService::with_durability(
        graph(),
        sim(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
        spec,
        &dir,
    )
    .expect("durable fleet build");
    let twin = fleet(cfg, spec);

    let script = [
        EdgeChange::insert(NodeId(5), NodeId(7), tech),
        EdgeChange::insert(NodeId(8), NodeId(0), tech),
        EdgeChange::remove(NodeId(0), NodeId(1), tech),
    ];
    for c in &script[..2] {
        victim.record(*c).unwrap();
        twin.record(*c).unwrap();
    }
    victim.rotate();
    twin.rotate();
    victim.record(script[2]).unwrap();
    twin.record(script[2]).unwrap();

    // Both shard WALs exist; the fleet journal holds the rotate.
    for s in 0..2 {
        let wal = dir.join(format!("shard-{s:04}")).join("journal.fuiwal");
        assert!(wal.is_file(), "missing {}", wal.display());
    }
    drop(victim);

    let restored = ShardedService::restore(&dir, sim(), cfg, spec).expect("warm restart");
    assert_eq!(restored.applied_seq(), twin.applied_seq());
    assert_eq!(restored.epoch(), twin.epoch());
    assert_eq!(restored.graph_gen(), twin.graph_gen());
    assert_eq!(restored.pending_changes(), twin.pending_changes());
    for req in all_queries() {
        assert_same_bits(
            &served(restored.call(req)),
            &served(twin.call(req)),
            "restored vs twin",
        );
    }
    let (epoch, graph_gen, applied) = restored.restore_probe().expect("probe");
    assert_eq!(
        (epoch, graph_gen, applied),
        (
            restored.epoch(),
            restored.graph_gen(),
            restored.applied_seq()
        )
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_with_a_different_shard_count_is_answer_invisible() {
    let cfg = ServiceConfig::default();
    let dir = scratch("respec");
    let tech = TopicSet::single(Topic::Technology);
    let sim = SimMatrix::opencalais;

    let original = ShardedService::with_durability(
        graph(),
        sim(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
        ShardSpec::new(2, PartitionStrategy::Hash),
        &dir,
    )
    .expect("durable fleet build");
    original
        .record(EdgeChange::insert(NodeId(5), NodeId(7), tech))
        .unwrap();
    original.rotate();
    let baseline: Vec<Served> = all_queries()
        .into_iter()
        .map(|r| served(original.call(r)))
        .collect();
    drop(original);

    // The partition is re-derived from the restored graph, never read
    // from disk — a 3-shard fleet resumes a 2-shard directory and
    // answers identically.
    let wider = ShardedService::restore(
        &dir,
        sim(),
        cfg,
        ShardSpec::new(3, PartitionStrategy::DegreeAware),
    )
    .expect("restore under a different spec");
    assert_eq!(wider.shard_count(), 3);
    for (req, want) in all_queries().into_iter().zip(&baseline) {
        assert_same_bits(&served(wider.call(req)), want, "respec restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
