//! End-to-end tests of the serving layer: cache correctness across
//! rotation/refresh, admission control, the submit/pump path and the
//! line-protocol frontend.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId, SocialGraph};
use fui_landmarks::EdgeChange;
use fui_service::{NetConfig, NetServer, Reply, Request, Service, ServiceConfig};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

/// A two-community graph: 0..5 a dense tech cluster, 6..9 a chain.
fn graph() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let tech = TopicSet::single(Topic::Technology);
    for _ in 0..10 {
        b.add_node(tech);
    }
    for u in 0..5u32 {
        for v in 0..5u32 {
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), tech);
            }
        }
    }
    for u in 5..9u32 {
        b.add_edge(NodeId(u), NodeId(u + 1), tech);
    }
    b.add_edge(NodeId(4), NodeId(5), tech);
    b.build()
}

fn service(cfg: ServiceConfig) -> Service {
    Service::new(
        graph(),
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
    )
}

fn served(reply: Reply) -> fui_service::Served {
    match reply {
        Reply::Result(s) => s,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn repeat_call_hits_the_cache_with_identical_bits() {
    let svc = service(ServiceConfig::default());
    let req = Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 5,
    };
    let first = served(svc.call(req));
    assert!(!first.cached);
    let second = served(svc.call(req));
    assert!(second.cached, "same request must be served from cache");
    assert_eq!(first.recommendations.len(), second.recommendations.len());
    for (a, b) in first
        .recommendations
        .iter()
        .zip(second.recommendations.iter())
    {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}

#[test]
fn rotation_invalidates_and_answers_track_the_new_graph() {
    let svc = service(ServiceConfig::default());
    let req = Request {
        user: NodeId(5),
        topic: Topic::Technology,
        top_n: 5,
    };
    let before = served(svc.call(req));
    // 5 → 7 shortcut changes 5's neighbourhood.
    let tech = TopicSet::single(Topic::Technology);
    svc.record(EdgeChange::insert(NodeId(5), NodeId(7), tech))
        .unwrap();
    let epoch = svc.rotate();
    assert!(epoch > before.epoch);
    let after = served(svc.call(req));
    assert!(!after.cached, "rotation must retire the cached answer");
    assert!(
        after.recommendations.iter().any(|&(v, _)| v == NodeId(7)),
        "answer must see the new edge"
    );
}

#[test]
fn rejected_requests_are_explicit() {
    let svc = service(ServiceConfig::default());
    let bad_user = svc.call(Request {
        user: NodeId(999),
        topic: Topic::Technology,
        top_n: 5,
    });
    assert!(matches!(bad_user, Reply::Rejected(_)));
    let bad_n = svc.call(Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 0,
    });
    assert!(matches!(bad_n, Reply::Rejected(_)));
}

#[test]
fn record_rejects_out_of_range_and_self_edges() {
    let svc = service(ServiceConfig::default());
    let tech = TopicSet::single(Topic::Technology);
    assert!(svc
        .record(EdgeChange::insert(NodeId(0), NodeId(99), tech))
        .is_err());
    assert!(svc
        .record(EdgeChange::insert(NodeId(3), NodeId(3), tech))
        .is_err());
    assert_eq!(svc.pending_changes(), 0);
}

#[test]
fn full_queue_sheds_and_every_accepted_request_is_answered() {
    let cfg = ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        ..ServiceConfig::default()
    };
    let svc = service(cfg);
    let req = |u: u32| Request {
        user: NodeId(u),
        topic: Topic::Technology,
        top_n: 5,
    };
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..12u32 {
        match svc.submit(req(i % 10), None) {
            Ok(t) => tickets.push(t),
            Err(Reply::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert_eq!(shed, 4, "12 submits against capacity 8");
    assert_eq!(svc.queue_depth(), 8);
    let mut pumped = 0;
    while svc.queue_depth() > 0 {
        pumped += svc.pump();
    }
    assert_eq!(pumped, 8);
    for t in tickets {
        assert!(matches!(t.wait(), Reply::Result(_)));
    }
}

#[test]
fn pump_and_call_agree_bit_for_bit() {
    let svc_pump = service(ServiceConfig::default());
    let svc_call = service(ServiceConfig::default());
    let reqs: Vec<Request> = (0..10u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: 7,
        })
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|&r| svc_pump.submit(r, None).expect("queue has room"))
        .collect();
    while svc_pump.pump() > 0 {}
    let direct = svc_call.call_many(&reqs);
    for (t, d) in tickets.into_iter().zip(direct) {
        let (a, b) = (served(t.wait()), served(d));
        assert_eq!(a.recommendations.len(), b.recommendations.len());
        for (x, y) in a.recommendations.iter().zip(b.recommendations.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }
}

#[test]
fn refresh_preserves_entries_that_avoided_the_landmark() {
    let cfg = ServiceConfig {
        // Aggressive staleness so one change flags landmarks.
        refresh_threshold: 1e-6,
        ..ServiceConfig::default()
    };
    let svc = service(cfg);
    // Node 8's depth-2 vicinity {9, 6? no — 8→9 only} avoids both
    // landmarks' slots being refreshed... cache it first.
    let far = Request {
        user: NodeId(8),
        topic: Topic::Technology,
        top_n: 5,
    };
    let first = served(svc.call(far));
    assert!(!first.cached);
    let again = served(svc.call(far));
    assert!(again.cached);
    let tech = TopicSet::single(Topic::Technology);
    // Change inside the dense cluster: flags landmark 2 (slot 0) —
    // and with the aggressive threshold possibly landmark 6 too, so
    // only assert on behaviour, not slot counts.
    svc.record(EdgeChange::insert(NodeId(0), NodeId(5), tech))
        .unwrap();
    let refreshed = svc.refresh();
    assert!(refreshed >= 1, "staleness must drive a refresh");
    let after = served(svc.call(far));
    // 8's exploration (8→9) meets no landmark at all, so its cached
    // answer must have survived both the staleness flag and the
    // refresh.
    assert!(after.cached, "entry that met no landmark must survive");
}

#[test]
fn line_protocol_round_trips() {
    let svc = Arc::new(service(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&svc), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut ask = |cmd: &str, line: &mut String| {
        writeln!(writer, "{cmd}").expect("write");
        line.clear();
        reader.read_line(line).expect("read");
        line.trim_end().to_owned()
    };

    let rec = ask("REC 0 technology 3", &mut line);
    assert!(rec.starts_with("OK REC "), "got {rec:?}");
    let parts: Vec<&str> = rec.split_whitespace().collect();
    assert!(parts.len() > 3, "expected recommendations in {rec:?}");

    // Scores round-trip exactly through the wire format.
    let direct = served(svc.call(Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 3,
    }));
    for (tok, &(v, s)) in parts[4..].iter().zip(direct.recommendations.iter()) {
        let (node, score) = tok.split_once(':').expect("node:score");
        assert_eq!(node.parse::<u32>().unwrap(), v.0);
        assert_eq!(score.parse::<f64>().unwrap().to_bits(), s.to_bits());
    }

    assert_eq!(ask("FOLLOW 5 7 technology", &mut line), "OK FOLLOW");
    assert_eq!(ask("UNFOLLOW 5 7", &mut line), "OK UNFOLLOW");
    assert!(ask("ROTATE", &mut line).starts_with("OK ROTATE "));
    assert!(ask("REFRESH", &mut line).starts_with("OK REFRESH "));
    assert!(ask("EPOCH", &mut line).starts_with("OK EPOCH "));
    assert!(ask("REC 0 nonsense", &mut line).starts_with("ERR "));
    assert!(ask("BOGUS", &mut line).starts_with("ERR "));

    writeln!(writer, "QUIT").expect("write");
    server.shutdown();
}
