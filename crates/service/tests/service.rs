//! End-to-end tests of the serving layer: cache correctness across
//! rotation/refresh, admission control, the submit/pump path, the
//! line-protocol frontend, and request tracing / SLO introspection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId, SocialGraph};
use fui_landmarks::EdgeChange;
use fui_service::{NetConfig, NetServer, Reply, Request, Service, ServiceConfig};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

/// A two-community graph: 0..5 a dense tech cluster, 6..9 a chain.
fn graph() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let tech = TopicSet::single(Topic::Technology);
    for _ in 0..10 {
        b.add_node(tech);
    }
    for u in 0..5u32 {
        for v in 0..5u32 {
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), tech);
            }
        }
    }
    for u in 5..9u32 {
        b.add_edge(NodeId(u), NodeId(u + 1), tech);
    }
    b.add_edge(NodeId(4), NodeId(5), tech);
    b.build()
}

fn service(cfg: ServiceConfig) -> Service {
    Service::new(
        graph(),
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        vec![NodeId(2), NodeId(6)],
        50,
        cfg,
    )
}

fn served(reply: Reply) -> fui_service::Served {
    match reply {
        Reply::Result(s) => s,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn repeat_call_hits_the_cache_with_identical_bits() {
    let svc = service(ServiceConfig::default());
    let req = Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 5,
    };
    let first = served(svc.call(req));
    assert!(!first.cached);
    let second = served(svc.call(req));
    assert!(second.cached, "same request must be served from cache");
    assert_eq!(first.recommendations.len(), second.recommendations.len());
    for (a, b) in first
        .recommendations
        .iter()
        .zip(second.recommendations.iter())
    {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}

#[test]
fn rotation_invalidates_and_answers_track_the_new_graph() {
    let svc = service(ServiceConfig::default());
    let req = Request {
        user: NodeId(5),
        topic: Topic::Technology,
        top_n: 5,
    };
    let before = served(svc.call(req));
    // 5 → 7 shortcut changes 5's neighbourhood.
    let tech = TopicSet::single(Topic::Technology);
    svc.record(EdgeChange::insert(NodeId(5), NodeId(7), tech))
        .unwrap();
    let epoch = svc.rotate();
    assert!(epoch > before.epoch);
    let after = served(svc.call(req));
    assert!(!after.cached, "rotation must retire the cached answer");
    assert!(
        after.recommendations.iter().any(|&(v, _)| v == NodeId(7)),
        "answer must see the new edge"
    );
}

#[test]
fn rejected_requests_are_explicit() {
    let svc = service(ServiceConfig::default());
    let bad_user = svc.call(Request {
        user: NodeId(999),
        topic: Topic::Technology,
        top_n: 5,
    });
    assert!(matches!(bad_user, Reply::Rejected(_)));
    let bad_n = svc.call(Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 0,
    });
    assert!(matches!(bad_n, Reply::Rejected(_)));
}

#[test]
fn record_rejects_out_of_range_and_self_edges() {
    let svc = service(ServiceConfig::default());
    let tech = TopicSet::single(Topic::Technology);
    assert!(svc
        .record(EdgeChange::insert(NodeId(0), NodeId(99), tech))
        .is_err());
    assert!(svc
        .record(EdgeChange::insert(NodeId(3), NodeId(3), tech))
        .is_err());
    assert_eq!(svc.pending_changes(), 0);
}

#[test]
fn full_queue_sheds_and_every_accepted_request_is_answered() {
    let cfg = ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        ..ServiceConfig::default()
    };
    let svc = service(cfg);
    let req = |u: u32| Request {
        user: NodeId(u),
        topic: Topic::Technology,
        top_n: 5,
    };
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..12u32 {
        match svc.submit(req(i % 10), None) {
            Ok(t) => tickets.push(t),
            Err(Reply::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert_eq!(shed, 4, "12 submits against capacity 8");
    assert_eq!(svc.queue_depth(), 8);
    let mut pumped = 0;
    while svc.queue_depth() > 0 {
        pumped += svc.pump();
    }
    assert_eq!(pumped, 8);
    for t in tickets {
        assert!(matches!(t.wait(), Reply::Result(_)));
    }
}

#[test]
fn pump_and_call_agree_bit_for_bit() {
    let svc_pump = service(ServiceConfig::default());
    let svc_call = service(ServiceConfig::default());
    let reqs: Vec<Request> = (0..10u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: 7,
        })
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|&r| svc_pump.submit(r, None).expect("queue has room"))
        .collect();
    while svc_pump.pump() > 0 {}
    let direct = svc_call.call_many(&reqs);
    for (t, d) in tickets.into_iter().zip(direct) {
        let (a, b) = (served(t.wait()), served(d));
        assert_eq!(a.recommendations.len(), b.recommendations.len());
        for (x, y) in a.recommendations.iter().zip(b.recommendations.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }
}

#[test]
fn refresh_preserves_entries_that_avoided_the_landmark() {
    let cfg = ServiceConfig {
        // Aggressive staleness so one change flags landmarks.
        refresh_threshold: 1e-6,
        ..ServiceConfig::default()
    };
    let svc = service(cfg);
    // Node 8's depth-2 vicinity {9, 6? no — 8→9 only} avoids both
    // landmarks' slots being refreshed... cache it first.
    let far = Request {
        user: NodeId(8),
        topic: Topic::Technology,
        top_n: 5,
    };
    let first = served(svc.call(far));
    assert!(!first.cached);
    let again = served(svc.call(far));
    assert!(again.cached);
    let tech = TopicSet::single(Topic::Technology);
    // Change inside the dense cluster: flags landmark 2 (slot 0) —
    // and with the aggressive threshold possibly landmark 6 too, so
    // only assert on behaviour, not slot counts.
    svc.record(EdgeChange::insert(NodeId(0), NodeId(5), tech))
        .unwrap();
    let refreshed = svc.refresh();
    assert!(refreshed >= 1, "staleness must drive a refresh");
    let after = served(svc.call(far));
    // 8's exploration (8→9) meets no landmark at all, so its cached
    // answer must have survived both the staleness flag and the
    // refresh.
    assert!(after.cached, "entry that met no landmark must survive");
}

#[test]
fn line_protocol_round_trips() {
    let svc = Arc::new(service(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&svc), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut ask = |cmd: &str, line: &mut String| {
        writeln!(writer, "{cmd}").expect("write");
        line.clear();
        reader.read_line(line).expect("read");
        line.trim_end().to_owned()
    };

    let rec = ask("REC 0 technology 3", &mut line);
    assert!(rec.starts_with("OK REC "), "got {rec:?}");
    let parts: Vec<&str> = rec.split_whitespace().collect();
    assert!(parts.len() > 3, "expected recommendations in {rec:?}");

    // Scores round-trip exactly through the wire format.
    let direct = served(svc.call(Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 3,
    }));
    for (tok, &(v, s)) in parts[4..].iter().zip(direct.recommendations.iter()) {
        let (node, score) = tok.split_once(':').expect("node:score");
        assert_eq!(node.parse::<u32>().unwrap(), v.0);
        assert_eq!(score.parse::<f64>().unwrap().to_bits(), s.to_bits());
    }

    assert_eq!(ask("FOLLOW 5 7 technology", &mut line), "OK FOLLOW");
    assert_eq!(ask("UNFOLLOW 5 7", &mut line), "OK UNFOLLOW");
    assert!(ask("ROTATE", &mut line).starts_with("OK ROTATE "));
    assert!(ask("REFRESH", &mut line).starts_with("OK REFRESH "));
    assert!(ask("EPOCH", &mut line).starts_with("OK EPOCH "));
    assert!(ask("REC 0 nonsense", &mut line).starts_with("ERR "));
    assert!(ask("BOGUS", &mut line).starts_with("ERR "));

    writeln!(writer, "QUIT").expect("write");
    server.shutdown();
}

/// Serialises the tests below that flip the global obs level / trace
/// sample rate (tests in this binary run in parallel threads).
fn obs_guard() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores level + sample on drop, so a failing assertion can't leak
/// `Full`/sampled state into the other tests.
struct TraceSession;

impl TraceSession {
    fn start(sample: f64) -> TraceSession {
        fui_obs::set_level(fui_obs::Level::Full);
        fui_obs::trace::set_sample(sample);
        fui_obs::trace::clear();
        TraceSession
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        fui_obs::trace::set_sample(0.0);
        fui_obs::set_level(fui_obs::Level::Counters);
    }
}

#[test]
fn trace_slowest_decomposition_sums_exactly() {
    let _g = obs_guard();
    let _session = TraceSession::start(1.0);
    let svc = service(ServiceConfig::default());
    // Mixed workload through the queue so queue wait is real: two
    // rounds over 8 users (second round hits the cache). top_n 6 is
    // this test's fingerprint — while the obs level is Full, requests
    // from concurrently running tests also land in the global ring.
    let reqs: Vec<Request> = (0..8u32)
        .chain(0..8u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: 6,
        })
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|&r| svc.submit(r, None).expect("queue has room"))
        .collect();
    while svc.pump() > 0 {}
    for t in tickets {
        assert!(matches!(t.wait(), Reply::Result(_)));
    }

    let slowest: Vec<_> = svc
        .trace_slowest(usize::MAX)
        .into_iter()
        .filter(|t| t.meta.top_n == 6)
        .take(5)
        .collect();
    assert_eq!(slowest.len(), 5, "16 traced requests on record");
    for pair in slowest.windows(2) {
        assert!(pair[0].total_ns >= pair[1].total_ns, "sorted slowest-first");
    }
    for t in &slowest {
        let sum = t.parts.queue_ns + t.parts.assembly_ns + t.parts.compute_ns + t.parts.cache_ns;
        // The acceptance bound is 1 %; the construction makes it exact.
        assert_eq!(sum, t.total_ns, "decomposition must sum to the total");
        assert!(
            matches!(
                t.outcome,
                fui_obs::TraceOutcome::Ok | fui_obs::TraceOutcome::OkCached
            ),
            "all requests were answered, got {:?}",
            t.outcome
        );
        assert!(!t.events.is_empty(), "timeline present");
        let last = t.events.last().unwrap();
        assert_eq!(last.kind, fui_obs::TraceEventKind::Finish);
        assert!(
            t.events
                .iter()
                .any(|e| e.kind == fui_obs::TraceEventKind::Enqueue),
            "queued requests record their admission"
        );
        for pair in t.events.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns, "timeline is ordered");
        }
    }
}

#[test]
fn sheds_are_attributed_to_their_cause() {
    let _g = obs_guard();
    let _session = TraceSession::start(1.0);
    let cfg = ServiceConfig {
        queue_capacity: 4,
        ..ServiceConfig::default()
    };
    let svc = service(cfg);
    // top_n 37 is this test's fingerprint in the shared trace ring;
    // counter deltas from concurrently running tests make the global
    // aggregates lower bounds only — the ring filter is the exact
    // check, plus `service.shed.disconnect`, which only this test can
    // drive (nothing else drops a service with queued requests).
    let req = Request {
        user: NodeId(0),
        topic: Topic::Technology,
        top_n: 37,
    };
    let queue_full = fui_obs::counter("service.shed.queue_full");
    let disconnect = fui_obs::counter("service.shed.disconnect");
    let aggregate = fui_obs::counter("service.shed");
    let (qf0, dc0, ag0) = (queue_full.get(), disconnect.get(), aggregate.get());

    // Overfill the queue: 6 submits against capacity 4.
    let tickets: Vec<_> = (0..6).filter_map(|_| svc.submit(req, None).ok()).collect();
    assert_eq!(tickets.len(), 4);
    assert!(queue_full.get() - qf0 >= 2, "two queue-full sheds counted");

    // Drop the service with the four accepted requests still queued:
    // every ticket must resolve Overloaded and count as a disconnect.
    drop(svc);
    for t in tickets {
        assert!(matches!(t.wait(), Reply::Overloaded));
    }
    assert_eq!(disconnect.get() - dc0, 4, "four disconnect sheds");
    assert!(aggregate.get() - ag0 >= 6, "aggregate covers both causes");

    // The queue-full sheds surface in the trace ring with their cause.
    let causes: Vec<fui_obs::TraceOutcome> = fui_obs::trace::slowest(usize::MAX)
        .into_iter()
        .filter(|t| t.meta.top_n == 37)
        .map(|t| t.outcome)
        .collect();
    assert_eq!(
        causes
            .iter()
            .filter(|o| **o == fui_obs::TraceOutcome::ShedQueueFull)
            .count(),
        2,
        "queue-full sheds are traced; got {causes:?}"
    );
    // Disconnect sheds are finished by the queue's drop-drain with
    // their own cause — a restart with queued requests leaves a full
    // audit trail, not silence.
    assert_eq!(
        causes
            .iter()
            .filter(|o| **o == fui_obs::TraceOutcome::ShedDisconnect)
            .count(),
        4,
        "disconnect sheds are traced; got {causes:?}"
    );
    assert_eq!(causes.len(), 6);
}

#[test]
fn slo_report_is_consistent_with_the_latency_histogram() {
    let _g = obs_guard();
    let _session = TraceSession::start(0.0);
    let svc = service(ServiceConfig::default());
    let reqs: Vec<Request> = (0..6u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: 5,
        })
        .collect();
    for r in svc.call_many(&reqs) {
        assert!(matches!(r, Reply::Result(_)));
    }
    let report = svc.slo();
    assert!(report.sampled >= 6, "six requests recorded since baseline");
    // Burn rate must be exactly the histogram's over-target fraction
    // scaled by the budget — the report is internally consistent...
    let expected = if report.sampled > 0 {
        (report.over_target as f64 / report.sampled as f64) / 0.01
    } else {
        0.0
    };
    assert!((report.latency_burn - expected).abs() < 1e-9);
    assert!((report.latency_budget_remaining - (1.0 - expected)).abs() < 1e-9);
    // ...and consistent with the underlying histogram: the window's
    // over-target count can never exceed the cumulative one.
    let hist = fui_obs::hist("service.request_latency");
    assert!(report.over_target <= hist.count_above(report.latency_target_ns));
    assert!(report.sampled <= hist.count());
    assert!(report.window_secs >= 0.0);
}

#[test]
fn introspection_verbs_round_trip() {
    let _g = obs_guard();
    let _session = TraceSession::start(1.0);
    let svc = Arc::new(service(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&svc), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let read_line = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_owned()
    };

    for u in 0..6 {
        writeln!(writer, "REC {u} technology 4").expect("write");
        assert!(read_line(&mut reader).starts_with("OK REC "));
    }

    // STATS: header advertises the line count; counters include the
    // service family.
    writeln!(writer, "STATS").expect("write");
    let header = read_line(&mut reader);
    let n: usize = header
        .strip_prefix("OK STATS ")
        .expect("stats header")
        .parse()
        .expect("line count");
    assert!(n > 0);
    let lines: Vec<String> = (0..n).map(|_| read_line(&mut reader)).collect();
    assert!(lines
        .iter()
        .all(|l| { l.starts_with("C ") || l.starts_with("G ") || l.starts_with("H ") }));
    assert!(lines.iter().any(|l| l.starts_with("C service.requests ")));
    assert!(lines
        .iter()
        .any(|l| l.starts_with("H service.request_latency ")));

    // SLO: one line, key=value.
    writeln!(writer, "SLO").expect("write");
    let slo = read_line(&mut reader);
    assert!(slo.starts_with("OK SLO window_secs="), "got {slo:?}");
    assert!(slo.contains(" latency_burn="));
    assert!(slo.contains(" shed_budget_remaining="));

    // TRACE 5: the acceptance criterion over the wire — five slowest
    // requests, each decomposition summing to within 1 % of its total.
    writeln!(writer, "TRACE 5").expect("write");
    let header = read_line(&mut reader);
    let k: usize = header
        .strip_prefix("OK TRACE ")
        .expect("trace header")
        .parse()
        .expect("trace count");
    assert_eq!(k, 5, "six traced requests on record, asked for five");
    for _ in 0..k {
        let req_line = read_line(&mut reader);
        assert!(req_line.starts_with("REQ id="), "got {req_line:?}");
        let field = |name: &str| -> u64 {
            req_line
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
                .unwrap_or_else(|| panic!("missing {name} in {req_line:?}"))
                .parse()
                .expect("numeric field")
        };
        let total = field("total_ns");
        let sum =
            field("queue_ns") + field("assembly_ns") + field("compute_ns") + field("cache_ns");
        let tolerance = (total / 100).max(1);
        assert!(
            sum.abs_diff(total) <= tolerance,
            "parts {sum} vs total {total} beyond 1 %"
        );
        for _ in 0..field("events") {
            assert!(read_line(&mut reader).starts_with("EV "));
        }
    }

    writeln!(writer, "QUIT").expect("write");
    server.shutdown();
}
