//! The **Tr** recommendation score of *Finding Users of Interest in
//! Micro-blogging Systems* (Constantin, Dahimene, Grossetti, du Mouza —
//! EDBT 2016): topological + contextual user recommendation over a
//! topic-labeled follow graph.
//!
//! # The score
//!
//! For a user `u`, a candidate `v` and a topic `t` (Definition 1):
//!
//! ```text
//! σ(u, v, t) = Σ_{p ∈ P(u,v)} β^|p| · ω̄_p(t)
//! ω̄_p(t)    = Σ_{e ∈ p} ε_e(t) · auth(end(e), t)        (Eq. 4)
//! ε_e(t)     = α^d · max_{t' ∈ label(e)} sim(t', t)       (Eq. 3)
//! auth(v, t) = (|Γv(t)|/|Γv|) · log(1+|Γv(t)|)/log(1+max_w |Γw(t)|)
//! ```
//!
//! summing over **all** walks from `u` to `v` (the matrix formulation
//! of Eq. 6 operates on the adjacency matrix, i.e. walks), with the
//! path decay `β` favouring short connections and the edge decay `α`
//! discounting edges far from `u` (`d` is the edge's 1-based position
//! on the path, per Example 2 of the paper).
//!
//! # The computation
//!
//! [`propagate::Propagator`] implements the iterative computation of
//! Proposition 1 as level-synchronous frontier propagation: level `k`
//! holds the score mass of walks of length exactly `k`, pushed along
//! out-edges with the recurrences
//!
//! ```text
//! topo_β^{k+1}[v]  += β  · topo_β^k[u]
//! topo_αβ^{k+1}[v] += αβ · topo_αβ^k[u]
//! σ^{k+1}[v][t]    += β · σ^k[u][t] + topo_αβ^k[u] · (βα · maxsim(u→v, t) · auth(v, t))
//! ```
//!
//! until the new level's mass is negligible (the paper's Algorithm 1).
//! Note the paper initialises `σ(u,u,t) = 1`; the consistent
//! initialisation — the one under which Proposition 1's proof and the
//! brute-force path sum agree — is `σ = 0`, `topo(u,u) = 1` (the empty
//! walk), which is what this crate uses and what the property tests
//! pin down.
//!
//! Convergence is guaranteed for `β < 1/σ_max(A)` (Proposition 3);
//! [`params::ScoreParams::validate`] checks the bound via the power
//! iteration of `fui_graph::spectral`.
//!
//! # Crate layout
//!
//! * [`params`] — `α`, `β`, tolerance, depth caps (paper defaults
//!   β = 0.0005, α = 0.85);
//! * [`authority`] — the per-(node, topic) authority index;
//! * [`relevance`] — edge relevance `ε` helpers;
//! * [`path`] — per-path scores and the composition law of Prop. 2;
//! * [`propagate`] — the frontier engine (exact scores, ablation
//!   variants, landmark pruning);
//! * [`recommend`] — exact top-n recommendation and multi-topic
//!   queries;
//! * [`exhaustive`] — brute-force walk enumeration used as the oracle
//!   in tests (exported for downstream property tests).

#![warn(missing_docs)]

pub mod authority;
pub mod exhaustive;
pub mod params;
pub mod path;
pub mod propagate;
pub mod recommend;
pub mod relevance;
pub mod topk;

pub use authority::AuthorityIndex;
pub use params::{ScoreParams, ScoreVariant};
pub use propagate::{PropRun, PropWorkspace, PropagateOpts, Propagation, Propagator, SimRowCache};
pub use recommend::{RecommendOpts, Recommendation, TrRecommender};
