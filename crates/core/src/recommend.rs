//! Exact top-n recommendation on top of the propagation engine.
//!
//! For a user `u` and a topic `t`, the exact recommender runs the
//! iterative computation to convergence and ranks every reached
//! account by `σ(u, ·, t)`. Multi-topic queries `Q = {t1, ..., tk}`
//! are answered by a weighted linear combination of the per-topic
//! scores (Section 3.2 — "user scores for each individual topic are
//! weighted by the relevance of the topic for the posts of u").

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{SimMatrix, Topic};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};
use crate::propagate::{PropWorkspace, PropagateOpts, Propagator};
use crate::topk;

/// One recommended account.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The recommended account.
    pub node: NodeId,
    /// Its recommendation score (σ, or topo under Katz).
    pub score: f64,
}

/// Options of a recommendation query.
#[derive(Clone, Copy, Debug)]
pub struct RecommendOpts {
    /// Drop accounts the user already follows (a production
    /// who-to-follow list would; the link-prediction protocol must
    /// not, because the held-out edge is removed from the graph
    /// first).
    pub exclude_followed: bool,
    /// Depth cap (`None` = run to convergence).
    pub max_depth: Option<u32>,
}

impl Default for RecommendOpts {
    fn default() -> Self {
        RecommendOpts {
            exclude_followed: true,
            max_depth: None,
        }
    }
}

/// Exact Tr recommender (also serves the ablation variants and Katz
/// through [`ScoreVariant`]).
pub struct TrRecommender<'g> {
    propagator: Propagator<'g>,
}

impl<'g> TrRecommender<'g> {
    /// Builds a recommender over a labeled graph.
    pub fn new(
        graph: &'g SocialGraph,
        authority: &'g AuthorityIndex,
        sim: &SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
    ) -> TrRecommender<'g> {
        TrRecommender {
            propagator: Propagator::new(graph, authority, sim, params, variant),
        }
    }

    /// Builds a recommender over a pre-built, shared
    /// [`SimRowCache`](crate::SimRowCache) — how ablation variants of
    /// the same graph avoid rescanning its edge labels per variant.
    pub fn with_sim_cache(
        graph: &'g SocialGraph,
        authority: &'g AuthorityIndex,
        rows: std::sync::Arc<crate::SimRowCache>,
        params: ScoreParams,
        variant: ScoreVariant,
    ) -> TrRecommender<'g> {
        TrRecommender {
            propagator: Propagator::with_sim_cache(graph, authority, rows, params, variant),
        }
    }

    /// The underlying propagator.
    pub fn propagator(&self) -> &Propagator<'g> {
        &self.propagator
    }

    /// Top-`n` accounts for `u` on topic `t`, best first.
    pub fn recommend(
        &self,
        u: NodeId,
        t: Topic,
        n: usize,
        opts: RecommendOpts,
    ) -> Vec<Recommendation> {
        self.recommend_weighted(u, &[(t, 1.0)], n, opts)
    }

    /// Top-`n` accounts for the weighted multi-topic query `q`
    /// (weights need not be normalised).
    pub fn recommend_weighted(
        &self,
        u: NodeId,
        q: &[(Topic, f64)],
        n: usize,
        opts: RecommendOpts,
    ) -> Vec<Recommendation> {
        let mut ws = PropWorkspace::new();
        self.recommend_weighted_with(&mut ws, u, q, n, opts)
    }

    /// [`recommend_weighted`](Self::recommend_weighted) running inside
    /// a caller-owned [`PropWorkspace`] — the allocation-free path for
    /// batched query loops (one workspace per `fui-exec` worker).
    pub fn recommend_weighted_with(
        &self,
        ws: &mut PropWorkspace,
        u: NodeId,
        q: &[(Topic, f64)],
        n: usize,
        opts: RecommendOpts,
    ) -> Vec<Recommendation> {
        let topics: Vec<Topic> = q.iter().map(|&(t, _)| t).collect();
        let r = self.propagator.propagate_into(
            ws,
            u,
            &topics,
            PropagateOpts {
                max_depth: opts.max_depth,
                ..Default::default()
            },
        );
        let followed = self.propagator.graph().followees(u);
        let katz = self.propagator.variant() == ScoreVariant::TopoOnly;
        topk::select_top_k(
            n,
            r.reached()
                .iter()
                .copied()
                .filter(|&v| v != u)
                .filter(|v| !opts.exclude_followed || !followed.contains(v))
                .map(|v| {
                    let score = if katz {
                        r.topo_beta(v)
                    } else {
                        q.iter()
                            .enumerate()
                            .map(|(ti, &(_, w))| w * r.sigma_at(v, ti))
                            .sum()
                    };
                    (v, score)
                })
                .filter(|&(_, s)| s > 0.0),
        )
        .into_iter()
        .map(|(node, score)| Recommendation { node, score })
        .collect()
    }

    /// Convenience for Section 3.2's query construction: derives the
    /// weighted multi-topic query from a user's interest profile ("user
    /// scores for each individual topic are weighted by the relevance
    /// of the topic for the posts of u") and answers it. `top_topics`
    /// bounds how many profile topics enter the query.
    pub fn recommend_for_profile(
        &self,
        u: NodeId,
        profile: &fui_taxonomy::TopicWeights,
        top_topics: usize,
        n: usize,
        opts: RecommendOpts,
    ) -> Vec<Recommendation> {
        let query = profile.top_k(top_topics);
        if query.is_empty() {
            return Vec::new();
        }
        self.recommend_weighted(u, &query, n, opts)
    }

    /// Scores an explicit candidate list for `u` on `t` (the
    /// link-prediction protocol ranks 1000 sampled accounts + the
    /// held-out one). Returns one score per candidate, aligned.
    pub fn score_candidates(
        &self,
        u: NodeId,
        t: Topic,
        candidates: &[NodeId],
        opts: RecommendOpts,
    ) -> Vec<f64> {
        let mut ws = PropWorkspace::new();
        self.score_candidates_with(&mut ws, u, t, candidates, opts)
    }

    /// [`score_candidates`](Self::score_candidates) inside a
    /// caller-owned [`PropWorkspace`] (the link-prediction sweeps score
    /// thousands of users back to back).
    pub fn score_candidates_with(
        &self,
        ws: &mut PropWorkspace,
        u: NodeId,
        t: Topic,
        candidates: &[NodeId],
        opts: RecommendOpts,
    ) -> Vec<f64> {
        let r = self.propagator.propagate_into(
            ws,
            u,
            &[t],
            PropagateOpts {
                max_depth: opts.max_depth,
                ..Default::default()
            },
        );
        let katz = self.propagator.variant() == ScoreVariant::TopoOnly;
        candidates
            .iter()
            .map(|&v| {
                if katz {
                    r.topo_beta(v)
                } else {
                    r.sigma_at(v, 0)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    /// The Example-2 graph of the paper (Figure 1 excerpt): A follows B
    /// and C; B leads to D, C leads to E. B is more specialised on
    /// technology than C, so D should be recommended above E.
    fn example2() -> (SocialGraph, [NodeId; 5]) {
        let mut g = GraphBuilder::new();
        let a = g.add_node(TopicSet::empty());
        let b = g.add_node(TopicSet::single(Topic::Technology));
        let c = g.add_node(TopicSet::single(Topic::Technology));
        let d = g.add_node(TopicSet::single(Topic::Technology));
        let e = g.add_node(TopicSet::single(Topic::Technology));
        let tech = TopicSet::single(Topic::Technology);
        let busi = TopicSet::single(Topic::Business);
        // A -> B labeled {business, technology}; A -> C labeled business.
        g.add_edge(a, b, tech.with(Topic::Business));
        g.add_edge(a, c, busi);
        // Extra followers fix the authorities: B followed twice on
        // tech (of 3), C twice on tech (of 6).
        let mut extra = Vec::new();
        for _ in 0..5 {
            extra.push(g.add_node(TopicSet::empty()));
        }
        g.add_edge(extra[0], b, tech);
        g.add_edge(extra[1], c, tech.with(Topic::Business));
        g.add_edge(extra[2], c, busi);
        g.add_edge(extra[3], c, busi);
        g.add_edge(extra[4], c, busi);
        // B -> D on technology, C -> E on business.
        g.add_edge(b, d, tech);
        g.add_edge(c, e, busi);
        (g.build(), [a, b, c, d, e])
    }

    #[test]
    fn example_two_ordering() {
        let (g, [a, b, c, d, e]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let out = rec.recommend(
            a,
            Topic::Technology,
            10,
            RecommendOpts {
                exclude_followed: false,
                max_depth: None,
            },
        );
        let pos = |n: NodeId| out.iter().position(|r| r.node == n);
        // B (followed on tech, high authority) ranks above C.
        assert!(pos(b).unwrap() < pos(c).unwrap(), "{out:?}");
        // D (through B) ranks above E (through C): the paper's
        // Example 2 conclusion.
        assert!(pos(d).unwrap() < pos(e).unwrap(), "{out:?}");
    }

    #[test]
    fn exclude_followed_filters_direct_followees() {
        let (g, [a, b, c, ..]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let out = rec.recommend(a, Topic::Technology, 10, RecommendOpts::default());
        assert!(!out.iter().any(|r| r.node == b || r.node == c));
    }

    #[test]
    fn weighted_query_combines_topics() {
        let (g, [a, _, _, d, e]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let opts = RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        };
        let tech_only = rec.recommend_weighted(a, &[(Topic::Technology, 1.0)], 10, opts);
        let both = rec.recommend_weighted(
            a,
            &[(Topic::Technology, 0.5), (Topic::Business, 0.5)],
            10,
            opts,
        );
        let score =
            |list: &[Recommendation], n: NodeId| list.iter().find(|r| r.node == n).map(|r| r.score);
        // Both lists exist and rank D and E somewhere.
        assert!(score(&tech_only, d).is_some());
        assert!(score(&both, e).is_some());
        // Adding business weight must help E (reached via a business
        // edge) relative to its tech-only score.
        let e_tech = score(&tech_only, e).unwrap_or(0.0);
        let e_both = score(&both, e).unwrap();
        assert!(e_both > 0.0);
        // Weighted combination is a true mix, not a copy.
        assert!((e_both - e_tech).abs() > 1e-15);
    }

    #[test]
    fn profile_query_matches_explicit_weights() {
        let (g, [a, ..]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let opts = RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        };
        let mut profile = fui_taxonomy::TopicWeights::zero();
        profile.set(Topic::Technology, 0.6);
        profile.set(Topic::Business, 0.4);
        let via_profile = rec.recommend_for_profile(a, &profile, 2, 10, opts);
        let explicit = rec.recommend_weighted(
            a,
            &[(Topic::Technology, 0.6), (Topic::Business, 0.4)],
            10,
            opts,
        );
        assert_eq!(via_profile.len(), explicit.len());
        for (x, y) in via_profile.iter().zip(&explicit) {
            assert_eq!(x.node, y.node);
            assert!((x.score - y.score).abs() < 1e-15);
        }
        // Empty profile yields no recommendations rather than a panic.
        let empty = rec.recommend_for_profile(a, &fui_taxonomy::TopicWeights::zero(), 3, 10, opts);
        assert!(empty.is_empty());
    }

    #[test]
    fn multi_topic_run_equals_per_topic_runs() {
        // One propagation over [t1, t2] must equal two independent
        // single-topic propagations — the flat sigma layout carries no
        // cross-topic interaction.
        let (g, [a, ..]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let p = rec.propagator();
        let both = p.propagate(
            a,
            &[Topic::Technology, Topic::Business],
            crate::propagate::PropagateOpts::default(),
        );
        for (ti, &t) in [Topic::Technology, Topic::Business].iter().enumerate() {
            let single = p.propagate(a, &[t], crate::propagate::PropagateOpts::default());
            for v in g.nodes() {
                assert!(
                    (both.sigma_at(v, ti) - single.sigma_at(v, 0)).abs() < 1e-15,
                    "topic {t} node {v}"
                );
            }
        }
    }

    #[test]
    fn score_candidates_aligns_with_recommend() {
        let (g, [a, _, _, d, e]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(&g, &idx, &sim, ScoreParams::default(), ScoreVariant::Full);
        let opts = RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        };
        let scores = rec.score_candidates(a, Topic::Technology, &[d, e], opts);
        assert_eq!(scores.len(), 2);
        assert!(scores[0] > scores[1], "{scores:?}");
        let list = rec.recommend(a, Topic::Technology, 10, opts);
        let from_list = |n: NodeId| list.iter().find(|r| r.node == n).unwrap().score;
        assert!((scores[0] - from_list(d)).abs() < 1e-15);
        assert!((scores[1] - from_list(e)).abs() < 1e-15);
    }

    #[test]
    fn katz_variant_ranks_by_topology() {
        let (g, [a, b, c, ..]) = example2();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let rec = TrRecommender::new(
            &g,
            &idx,
            &sim,
            ScoreParams::default(),
            ScoreVariant::TopoOnly,
        );
        let out = rec.recommend(
            a,
            Topic::Technology,
            10,
            RecommendOpts {
                exclude_followed: false,
                max_depth: None,
            },
        );
        // Pure topology cannot separate B from C (both one hop away).
        let score = |n: NodeId| out.iter().find(|r| r.node == n).unwrap().score;
        assert!((score(b) - score(c)).abs() < 1e-15);
    }
}
