//! Edge relevance `ε_e(t)` (Equation 3) and the single-edge score
//! `ω_{u→v}(t)` used by the iterative recurrence (Proposition 1).

use fui_graph::{EdgeRef, NodeId};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};

/// `ε_e(t) = α^d · max_{t' ∈ label(e)} sim(t', t)` for an edge at
/// 1-based position `d` on the path (the first edge of a path has
/// `d = 1`, per Example 2 of the paper).
pub fn edge_relevance(
    sim: &SimMatrix,
    params: &ScoreParams,
    labels: TopicSet,
    t: Topic,
    d: u32,
) -> f64 {
    params.alpha.powi(d as i32) * sim.max_sim(labels, t)
}

/// The score `ω_{u→v}(t) = β·α · maxsim(label(u→v), t) · auth(v, t)`
/// of a single-edge path (Proposition 1), under the given score
/// variant:
///
/// * `Full` — as above;
/// * `NoAuthority` — authority replaced by 1 (`Tr−auth`);
/// * `NoSimilarity` — similarity replaced by 1 (`Tr−sim`);
/// * `TopoOnly` — 0 (the Katz score carries no topical mass).
pub fn single_edge_score(
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    edge: EdgeRef,
    t: Topic,
    variant: ScoreVariant,
) -> f64 {
    let ab = params.beta * params.alpha;
    match variant {
        ScoreVariant::Full => ab * sim.max_sim(edge.labels, t) * authority.auth(edge.node, t),
        ScoreVariant::NoAuthority => ab * sim.max_sim(edge.labels, t),
        ScoreVariant::NoSimilarity => ab * authority.auth(edge.node, t),
        ScoreVariant::TopoOnly => 0.0,
    }
}

/// Convenience used by brute-force oracles: the `ε·auth` contribution
/// of the `d`-th edge of a walk (1-based `d`), with ablation variants.
#[allow(clippy::too_many_arguments)]
pub fn walk_edge_contribution(
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    labels: TopicSet,
    end: NodeId,
    t: Topic,
    d: u32,
    variant: ScoreVariant,
) -> f64 {
    let alpha_d = params.alpha.powi(d as i32);
    match variant {
        ScoreVariant::Full => alpha_d * sim.max_sim(labels, t) * authority.auth(end, t),
        ScoreVariant::NoAuthority => alpha_d * sim.max_sim(labels, t),
        ScoreVariant::NoSimilarity => alpha_d * authority.auth(end, t),
        ScoreVariant::TopoOnly => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, SocialGraph};

    fn tiny() -> (SocialGraph, AuthorityIndex) {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::single(Topic::Technology));
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn relevance_decays_with_distance() {
        let sim = SimMatrix::opencalais();
        let p = ScoreParams {
            alpha: 0.5,
            ..ScoreParams::default()
        };
        let labels = TopicSet::single(Topic::Technology);
        let e1 = edge_relevance(&sim, &p, labels, Topic::Technology, 1);
        let e2 = edge_relevance(&sim, &p, labels, Topic::Technology, 2);
        assert!((e1 - 0.5).abs() < 1e-12);
        assert!((e2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relevance_uses_semantic_similarity() {
        let sim = SimMatrix::opencalais();
        let p = ScoreParams {
            alpha: 1.0,
            ..ScoreParams::default()
        };
        // A health-labeled edge still counts for technology (same
        // scitech branch: sim = 2/3).
        let e = edge_relevance(
            &sim,
            &p,
            TopicSet::single(Topic::Health),
            Topic::Technology,
            1,
        );
        assert!((e - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_edge_variants() {
        let (g, idx) = tiny();
        let sim = SimMatrix::opencalais();
        let p = ScoreParams {
            alpha: 0.85,
            beta: 0.5,
            ..ScoreParams::default()
        };
        let edge = g.out_edges(fui_graph::NodeId(0)).next().unwrap();
        let t = Topic::Technology;
        let full = single_edge_score(&sim, &idx, &p, edge, t, ScoreVariant::Full);
        let no_auth = single_edge_score(&sim, &idx, &p, edge, t, ScoreVariant::NoAuthority);
        let no_sim = single_edge_score(&sim, &idx, &p, edge, t, ScoreVariant::NoSimilarity);
        let topo = single_edge_score(&sim, &idx, &p, edge, t, ScoreVariant::TopoOnly);
        // v has exactly one follower, on technology: auth = 1.
        assert!((full - 0.5 * 0.85).abs() < 1e-12);
        assert_eq!(full, no_auth);
        assert_eq!(full, no_sim);
        assert_eq!(topo, 0.0);
    }

    #[test]
    fn walk_contribution_matches_components() {
        let (_, idx) = tiny();
        let sim = SimMatrix::opencalais();
        let p = ScoreParams {
            alpha: 0.85,
            ..ScoreParams::default()
        };
        let labels = TopicSet::single(Topic::Technology);
        let c = walk_edge_contribution(
            &sim,
            &idx,
            &p,
            labels,
            fui_graph::NodeId(1),
            Topic::Technology,
            2,
            ScoreVariant::Full,
        );
        assert!((c - 0.85f64.powi(2)).abs() < 1e-12);
    }
}
