//! Per-path scores and the composition law (Proposition 2).
//!
//! The *total path score* of a walk `p` is `ω_p(t) = β^|p| · ω̄_p(t)`;
//! the landmark machinery rests on Proposition 2: for `p = p1 · p2`,
//!
//! ```text
//! ω_p(t) = β^|p2| · ω_{p1}(t) + (βα)^|p1| · ω_{p2}(t)
//! ```
//!
//! (the prefix keeps its score decayed by the suffix length; the
//! suffix enters with the `αβ`-decayed weight of the prefix, because
//! each of its edges sits `|p1|` positions further from the source).

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{SimMatrix, Topic};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};
use crate::relevance::walk_edge_contribution;

/// Total path score `ω_p(t) = β^|p| Σ_d α^d·maxsim_d·auth_d` of an
/// explicit walk (sequence of nodes; consecutive pairs must be edges).
///
/// # Panics
/// Panics if the walk has fewer than 2 nodes or contains a non-edge.
pub fn walk_score(
    graph: &SocialGraph,
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    walk: &[NodeId],
    t: Topic,
    variant: ScoreVariant,
) -> f64 {
    assert!(walk.len() >= 2, "a path has at least one edge");
    let len = (walk.len() - 1) as i32;
    let mut topical = 0.0;
    for (d, pair) in walk.windows(2).enumerate() {
        let labels = graph
            .edge_label(pair[0], pair[1])
            .expect("walk follows existing edges");
        topical += walk_edge_contribution(
            sim,
            authority,
            params,
            labels,
            pair[1],
            t,
            (d + 1) as u32,
            variant,
        );
    }
    params.beta.powi(len) * topical
}

/// Topological weight `β^|p|` of a walk of the given length.
pub fn walk_topo(params: &ScoreParams, len: usize) -> f64 {
    params.beta.powi(len as i32)
}

/// `(αβ)^|p|` — the weight a prefix of the given length contributes to
/// its suffix's edges.
pub fn walk_topo_alphabeta(params: &ScoreParams, len: usize) -> f64 {
    (params.alpha * params.beta).powi(len as i32)
}

/// Proposition 2: composes the total path scores of a prefix and a
/// suffix into the score of the concatenated walk.
pub fn compose(
    params: &ScoreParams,
    score_prefix: f64,
    len_prefix: usize,
    score_suffix: f64,
    len_suffix: usize,
) -> f64 {
    params.beta.powi(len_suffix as i32) * score_prefix
        + walk_topo_alphabeta(params, len_prefix) * score_suffix
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::GraphBuilder;
    use fui_taxonomy::TopicSet;

    /// A labeled 5-chain 0 → 1 → 2 → 3 → 4 with mixed topics.
    fn chain() -> (SocialGraph, AuthorityIndex) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node(TopicSet::empty())).collect();
        let labels = [
            TopicSet::single(Topic::Technology),
            TopicSet::single(Topic::Health),
            TopicSet::single(Topic::Technology).with(Topic::Sports),
            TopicSet::single(Topic::Politics),
        ];
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(n[i], n[i + 1], l);
        }
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        (g, idx)
    }

    fn params() -> ScoreParams {
        ScoreParams {
            alpha: 0.7,
            beta: 0.4,
            ..ScoreParams::default()
        }
    }

    #[test]
    fn composition_matches_direct_score_at_every_split() {
        let (g, idx) = chain();
        let sim = SimMatrix::opencalais();
        let p = params();
        let walk: Vec<NodeId> = (0..5).map(NodeId).collect();
        for t in [Topic::Technology, Topic::Social, Topic::Health] {
            let direct = walk_score(&g, &sim, &idx, &p, &walk, t, ScoreVariant::Full);
            for split in 1..4 {
                let s1 = walk_score(&g, &sim, &idx, &p, &walk[..=split], t, ScoreVariant::Full);
                // The suffix must be scored with its *local* positions;
                // Prop. 2's (αβ)^|p1| factor restores the global ones.
                let suffix = &walk[split..];
                let s2 = walk_score(&g, &sim, &idx, &p, suffix, t, ScoreVariant::Full);
                let composed = compose(&p, s1, split, s2, 4 - split);
                assert!(
                    (direct - composed).abs() < 1e-12,
                    "t={t} split={split}: {direct} vs {composed}"
                );
            }
        }
    }

    #[test]
    fn composition_holds_for_all_variants() {
        let (g, idx) = chain();
        let sim = SimMatrix::opencalais();
        let p = params();
        let walk: Vec<NodeId> = (0..5).map(NodeId).collect();
        for variant in [
            ScoreVariant::Full,
            ScoreVariant::NoAuthority,
            ScoreVariant::NoSimilarity,
        ] {
            let direct = walk_score(&g, &sim, &idx, &p, &walk, Topic::Technology, variant);
            let s1 = walk_score(&g, &sim, &idx, &p, &walk[..=2], Topic::Technology, variant);
            let s2 = walk_score(&g, &sim, &idx, &p, &walk[2..], Topic::Technology, variant);
            let composed = compose(&p, s1, 2, s2, 2);
            assert!((direct - composed).abs() < 1e-12, "{variant:?}");
        }
    }

    #[test]
    fn topo_weights() {
        let p = params();
        assert!((walk_topo(&p, 3) - 0.4f64.powi(3)).abs() < 1e-15);
        assert!((walk_topo_alphabeta(&p, 2) - (0.28f64).powi(2)).abs() < 1e-12);
        assert_eq!(walk_topo(&p, 0), 1.0);
    }

    #[test]
    fn single_edge_walk_score() {
        let (g, idx) = chain();
        let sim = SimMatrix::opencalais();
        let p = params();
        let s = walk_score(
            &g,
            &sim,
            &idx,
            &p,
            &[NodeId(0), NodeId(1)],
            Topic::Technology,
            ScoreVariant::Full,
        );
        // β · α · sim(tech,tech)=1 · auth(node1, tech)=1 (sole follower
        // on tech, and the global max on tech is 1 follower... node 3's
        // edge also carries technology, so max = 1 and auth = 1).
        assert!((s - 0.4 * 0.7).abs() < 1e-12, "s = {s}");
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn trivial_walk_rejected() {
        let (g, idx) = chain();
        let sim = SimMatrix::opencalais();
        walk_score(
            &g,
            &sim,
            &idx,
            &params(),
            &[NodeId(0)],
            Topic::Technology,
            ScoreVariant::Full,
        );
    }
}
