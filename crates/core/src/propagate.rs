//! The iterative score computation (Proposition 1 / Algorithm 1) as
//! level-synchronous frontier propagation.
//!
//! Level `k` holds the mass of walks of length exactly `k` out of the
//! source. One pass over the out-edges of the current frontier pushes
//! level `k` into level `k+1`:
//!
//! ```text
//! topo_β^{k+1}[v]  += β  · topo_β^k[u]                        (Eq. 2 mass)
//! topo_αβ^{k+1}[v] += αβ · topo_αβ^k[u]
//! σ^{k+1}[v][t]    += β · σ^k[u][t] + topo_αβ^k[u] · ω_{u→v}(t)   (Eq. 5)
//! ```
//!
//! with `ω_{u→v}(t) = βα · maxsim(label(u→v), t) · auth(v, t)`. The
//! accumulated sums over all levels are exactly `topo_β(u,v)`,
//! `topo_αβ(u,v)` and `σ(u,v,t)`.
//!
//! The engine serves three callers:
//!
//! * **exact recommendation** — run to convergence from a query node;
//! * **landmark preprocessing** (Algorithm 1) — run to convergence
//!   from each landmark, for all topics at once;
//! * **landmark queries** (Algorithm 2) — run at small depth with
//!   *pruning*: a frontier node flagged as a landmark is not expanded,
//!   "to avoid considering twice paths which pass through a landmark"
//!   (Section 5.4).
//!
//! Ablation variants (`Tr−auth`, `Tr−sim`, Katz) reuse the same sweep
//! with the corresponding factor replaced by 1 (or dropped), so the
//! Figure 4 comparisons measure scoring semantics, not implementation
//! differences.

use std::collections::HashMap;
use std::sync::OnceLock;

use fui_graph::{NodeId, SocialGraph};
use fui_obs as obs;
use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};

/// Interned metric handles for the propagation engine. Counts are
/// accumulated in locals during a run and flushed here once per
/// `propagate` call, so the per-edge hot loop never touches an atomic.
struct PropMetrics {
    calls: obs::Counter,
    edges_relaxed: obs::Counter,
    levels: obs::Counter,
    pruned_at: obs::Counter,
    stop_converged: obs::Counter,
    stop_depth_cap: obs::Counter,
    stop_frontier_empty: obs::Counter,
    frontier_peak: obs::Gauge,
    residual: obs::Gauge,
    frontier_size: obs::Hist,
}

fn prop_metrics() -> &'static PropMetrics {
    static METRICS: OnceLock<PropMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PropMetrics {
        calls: obs::counter("propagate.calls"),
        edges_relaxed: obs::counter("propagate.edges_relaxed"),
        levels: obs::counter("propagate.levels"),
        pruned_at: obs::counter("landmark.pruned_at"),
        stop_converged: obs::counter("propagate.stop.converged"),
        stop_depth_cap: obs::counter("propagate.stop.depth_cap"),
        stop_frontier_empty: obs::counter("propagate.stop.frontier_empty"),
        frontier_peak: obs::gauge("propagate.frontier_peak"),
        residual: obs::gauge("propagate.residual"),
        frontier_size: obs::hist("propagate.frontier_size"),
    })
}

/// Why a propagation run stopped (mirrored into stop-reason counters).
#[derive(Clone, Copy)]
enum StopReason {
    Converged,
    DepthCap,
    FrontierEmpty,
}

/// Options of a single propagation run.
#[derive(Clone, Copy, Default)]
pub struct PropagateOpts<'a> {
    /// Additional depth cap on top of `ScoreParams::max_depth`
    /// (0 keeps only the source; `None` means params-only).
    pub max_depth: Option<u32>,
    /// Dense landmark mask: frontier nodes (other than the source)
    /// flagged `true` are collected but not expanded.
    pub prune: Option<&'a [bool]>,
}

/// Result of a propagation: accumulated scores over every reached node.
#[derive(Clone, Debug)]
pub struct Propagation {
    /// The query topics, in the order `sigma` is laid out.
    pub topics: Vec<Topic>,
    /// `σ(source, v, t)` — flat `[v * topics.len() + ti]`.
    sigma: Vec<f64>,
    /// `topo_β(source, v)` (Katz mass, empty walk included at the
    /// source).
    topo_beta: Vec<f64>,
    /// `topo_αβ(source, v)`.
    topo_alphabeta: Vec<f64>,
    /// Nodes with any accumulated mass, source first, in first-reached
    /// order.
    pub reached: Vec<NodeId>,
    /// Source node.
    pub source: NodeId,
    /// Number of levels propagated (max walk length considered).
    pub levels: u32,
    /// Whether the tolerance criterion was met (vs. hitting the depth
    /// cap).
    pub converged: bool,
}

impl Propagation {
    /// `σ(source, v, topics[ti])`.
    #[inline]
    pub fn sigma_at(&self, v: NodeId, ti: usize) -> f64 {
        self.sigma[v.index() * self.topics.len() + ti]
    }

    /// `σ(source, v, t)`; 0 for a topic that was not queried.
    pub fn sigma(&self, v: NodeId, t: Topic) -> f64 {
        match self.topics.iter().position(|&q| q == t) {
            Some(ti) => self.sigma_at(v, ti),
            None => 0.0,
        }
    }

    /// `topo_β(source, v)` — the Katz score (the source's own entry
    /// includes the empty walk's 1).
    #[inline]
    pub fn topo_beta(&self, v: NodeId) -> f64 {
        self.topo_beta[v.index()]
    }

    /// `topo_αβ(source, v)`.
    #[inline]
    pub fn topo_alphabeta(&self, v: NodeId) -> f64 {
        self.topo_alphabeta[v.index()]
    }

    /// The recommendation vector `R_{u,v}` of Table 1: the score of
    /// `v` on every queried topic, packed into a [`fui_taxonomy::TopicWeights`]
    /// (unqueried topics read 0).
    pub fn recommendation_vector(&self, v: NodeId) -> fui_taxonomy::TopicWeights {
        let mut w = fui_taxonomy::TopicWeights::zero();
        for (ti, &t) in self.topics.iter().enumerate() {
            w.set(t, self.sigma_at(v, ti));
        }
        w
    }

    /// Top-`n` nodes by `σ(·, topics[ti])`, excluding the source,
    /// highest first (ties by node id).
    pub fn top_n_sigma(&self, ti: usize, n: usize) -> Vec<(NodeId, f64)> {
        self.top_n_by(n, |v| self.sigma_at(v, ti))
    }

    /// Top-`n` nodes by `topo_β`, excluding the source.
    pub fn top_n_topo(&self, n: usize) -> Vec<(NodeId, f64)> {
        self.top_n_by(n, |v| self.topo_beta(v))
    }

    fn top_n_by(&self, n: usize, score: impl Fn(NodeId) -> f64) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .reached
            .iter()
            .copied()
            .filter(|&v| v != self.source)
            .map(|v| (v, score(v)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are not NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        v.truncate(n);
        v
    }
}

/// Shared per-graph scoring state: the similarity-row cache (one row of
/// `maxsim(labels, ·)` per distinct edge label set, resolved per edge
/// position once) and the authority index.
pub struct Propagator<'g> {
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    params: ScoreParams,
    variant: ScoreVariant,
    /// `maxsim` rows, one per distinct edge label mask.
    sim_rows: Vec<[f64; NUM_TOPICS]>,
    /// Row index per global out-edge CSR position.
    edge_row: Vec<u32>,
    /// All-ones row used to neutralise a factor under ablations.
    ones: [f64; NUM_TOPICS],
}

impl<'g> Propagator<'g> {
    /// Builds a propagator; scans the graph once to cache per-label-set
    /// similarity rows.
    pub fn new(
        graph: &'g SocialGraph,
        authority: &'g AuthorityIndex,
        sim: &SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
    ) -> Propagator<'g> {
        params.check_ranges().expect("invalid score parameters");
        let mut mask_to_row: HashMap<u32, u32> = HashMap::new();
        let mut sim_rows: Vec<[f64; NUM_TOPICS]> = Vec::new();
        let mut edge_row = vec![0u32; graph.num_edges()];
        for u in graph.nodes() {
            for (pos, e) in graph.out_edges_indexed(u) {
                let idx = *mask_to_row.entry(e.labels.mask()).or_insert_with(|| {
                    let mut row = [0.0f64; NUM_TOPICS];
                    for (t_idx, slot) in row.iter_mut().enumerate() {
                        *slot = sim.max_sim(e.labels, Topic::from_index(t_idx));
                    }
                    sim_rows.push(row);
                    (sim_rows.len() - 1) as u32
                });
                edge_row[pos] = idx;
            }
        }
        if sim_rows.is_empty() {
            sim_rows.push([0.0; NUM_TOPICS]);
        }
        Propagator {
            graph,
            authority,
            params,
            variant,
            sim_rows,
            edge_row,
            ones: [1.0; NUM_TOPICS],
        }
    }

    /// The graph being scored.
    pub fn graph(&self) -> &SocialGraph {
        self.graph
    }

    /// The score parameters.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// The score variant.
    pub fn variant(&self) -> ScoreVariant {
        self.variant
    }

    /// Runs the iterative computation from `source` for the given
    /// query topics (empty slice is valid and yields a pure Katz run).
    pub fn propagate(
        &self,
        source: NodeId,
        topics: &[Topic],
        opts: PropagateOpts<'_>,
    ) -> Propagation {
        let n = self.graph.num_nodes();
        assert!(source.index() < n, "source not in graph");
        let tc = if self.variant == ScoreVariant::TopoOnly {
            0
        } else {
            topics.len()
        };
        let topic_idx: Vec<usize> = topics.iter().map(|t| t.index()).collect();
        let beta = self.params.beta;
        let ab = self.params.alpha * beta;
        let depth_cap = self
            .params
            .max_depth
            .min(opts.max_depth.unwrap_or(u32::MAX));

        // Accumulators (sigma buffers are empty under TopoOnly).
        let mut acc_sigma = vec![0.0f64; n * tc];
        let mut acc_tb = vec![0.0f64; n];
        let mut acc_tab = vec![0.0f64; n];

        // Level buffers (current and next), sparse via frontier lists.
        let mut cur_sig = vec![0.0f64; n * tc];
        let mut next_sig = cur_sig.clone();
        let mut cur_tb = vec![0.0f64; n];
        let mut next_tb = vec![0.0f64; n];
        let mut cur_tab = vec![0.0f64; n];
        let mut next_tab = vec![0.0f64; n];

        let mut frontier: Vec<u32> = vec![source.0];
        let mut next_frontier: Vec<u32> = Vec::new();
        let mut in_next = vec![false; n];

        let mut reached: Vec<NodeId> = Vec::new();
        let mut seen = vec![false; n];

        cur_tb[source.index()] = 1.0;
        cur_tab[source.index()] = 1.0;

        let mut acc_tb_total = 0.0f64;
        let mut levels = 0u32;
        let mut converged = false;

        // Observability locals, flushed to the registry once at the end.
        let metrics = prop_metrics();
        let mut edges_relaxed = 0u64;
        let mut pruned_at = 0u64;
        let mut frontier_peak = 0u64;
        let mut residual = 0.0f64;
        let stop_reason;

        loop {
            frontier_peak = frontier_peak.max(frontier.len() as u64);
            metrics.frontier_size.record(frontier.len() as u64);

            // Fold the current level into the accumulators.
            let mut level_tb = 0.0f64;
            for &u in &frontier {
                let ui = u as usize;
                if !seen[ui] {
                    seen[ui] = true;
                    reached.push(NodeId(u));
                }
                acc_tb[ui] += cur_tb[ui];
                acc_tab[ui] += cur_tab[ui];
                level_tb += cur_tb[ui];
                if tc > 0 {
                    let base = ui * tc;
                    for ti in 0..tc {
                        acc_sigma[base + ti] += cur_sig[base + ti];
                    }
                }
            }
            acc_tb_total += level_tb;
            if acc_tb_total > 0.0 {
                residual = level_tb / acc_tb_total;
            }

            // Convergence: the level's topological mass (the slowest
            // decaying of the three) is negligible relative to the
            // accumulated mass.
            if levels > 0 && level_tb < self.params.tolerance * acc_tb_total {
                converged = true;
                stop_reason = StopReason::Converged;
                break;
            }
            if levels >= depth_cap {
                stop_reason = StopReason::DepthCap;
                break;
            }

            // Expand the frontier.
            next_frontier.clear();
            for &u in &frontier {
                let ui = u as usize;
                if u != source.0 {
                    if let Some(mask) = opts.prune {
                        if mask[ui] {
                            pruned_at += 1;
                            continue;
                        }
                    }
                }
                let tb_u = cur_tb[ui];
                let tab_u = cur_tab[ui];
                let sig_base = ui * tc;
                for (pos, e) in self.graph.out_edges_indexed(NodeId(u)) {
                    edges_relaxed += 1;
                    let vi = e.node.index();
                    if !in_next[vi] {
                        in_next[vi] = true;
                        next_frontier.push(e.node.0);
                    }
                    next_tb[vi] += beta * tb_u;
                    next_tab[vi] += ab * tab_u;
                    if tc > 0 {
                        let (sim_row, auth_row): (&[f64], &[f64]) = match self.variant {
                            ScoreVariant::Full => (
                                &self.sim_rows[self.edge_row[pos] as usize],
                                self.authority.auth_row(e.node),
                            ),
                            ScoreVariant::NoAuthority => {
                                (&self.sim_rows[self.edge_row[pos] as usize], &self.ones)
                            }
                            ScoreVariant::NoSimilarity => {
                                (&self.ones, self.authority.auth_row(e.node))
                            }
                            ScoreVariant::TopoOnly => unreachable!("tc == 0"),
                        };
                        let vbase = vi * tc;
                        for ti in 0..tc {
                            let t_idx = topic_idx[ti];
                            let w = ab * sim_row[t_idx] * auth_row[t_idx];
                            next_sig[vbase + ti] += beta * cur_sig[sig_base + ti] + tab_u * w;
                        }
                    }
                }
            }

            // Clear the current level's slots and swap buffers.
            for &u in &frontier {
                let ui = u as usize;
                cur_tb[ui] = 0.0;
                cur_tab[ui] = 0.0;
                if tc > 0 {
                    let base = ui * tc;
                    for ti in 0..tc {
                        cur_sig[base + ti] = 0.0;
                    }
                }
            }
            for &v in &next_frontier {
                in_next[v as usize] = false;
            }
            std::mem::swap(&mut cur_sig, &mut next_sig);
            std::mem::swap(&mut cur_tb, &mut next_tb);
            std::mem::swap(&mut cur_tab, &mut next_tab);
            std::mem::swap(&mut frontier, &mut next_frontier);

            levels += 1;
            if frontier.is_empty() {
                converged = true;
                stop_reason = StopReason::FrontierEmpty;
                break;
            }
        }

        // Flush the batched observability locals.
        metrics.calls.incr();
        metrics.edges_relaxed.add(edges_relaxed);
        metrics.levels.add(levels as u64);
        metrics.pruned_at.add(pruned_at);
        metrics.frontier_peak.record_max(frontier_peak as f64);
        metrics.residual.set(residual);
        match stop_reason {
            StopReason::Converged => metrics.stop_converged.incr(),
            StopReason::DepthCap => metrics.stop_depth_cap.incr(),
            StopReason::FrontierEmpty => metrics.stop_frontier_empty.incr(),
        }

        // Pack sigma for the requested topics even under TopoOnly
        // (zeros), so the result shape is uniform.
        let sigma = if tc > 0 {
            acc_sigma
        } else {
            vec![0.0; n * topics.len()]
        };
        Propagation {
            topics: topics.to_vec(),
            sigma,
            topo_beta: acc_tb,
            topo_alphabeta: acc_tab,
            reached,
            source,
            levels,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    fn diamond() -> SocialGraph {
        // 0 -> {1, 2} -> 3, labels all technology.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        let l = TopicSet::single(Topic::Technology);
        b.add_edge(n[0], n[1], l);
        b.add_edge(n[0], n[2], l);
        b.add_edge(n[1], n[3], l);
        b.add_edge(n[2], n[3], l);
        b.build()
    }

    fn params() -> ScoreParams {
        ScoreParams {
            alpha: 0.7,
            beta: 0.3,
            tolerance: 1e-12,
            max_depth: 30,
        }
    }

    #[test]
    fn topo_counts_all_walks() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        // topo_beta(0, 3) = 2 walks of length 2 = 2 * 0.09.
        assert!((r.topo_beta(NodeId(3)) - 2.0 * 0.09).abs() < 1e-12);
        assert!((r.topo_beta(NodeId(1)) - 0.3).abs() < 1e-12);
        // Source includes the empty walk.
        assert!((r.topo_beta(NodeId(0)) - 1.0).abs() < 1e-12);
        assert!(r.converged);
    }

    #[test]
    fn sigma_on_single_edge() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        // σ(0,1,tech): walk 0→1 only. ω = βα·sim·auth(1). Node 1 has
        // one follower on tech; node 3 has two (the per-topic max).
        let auth1 = idx.auth(NodeId(1), Topic::Technology);
        let expected = 0.3 * 0.7 * 1.0 * auth1;
        assert!((r.sigma(NodeId(1), Topic::Technology) - expected).abs() < 1e-12);
    }

    #[test]
    fn depth_cap_limits_walks() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                max_depth: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(r.topo_beta(NodeId(3)), 0.0);
        assert!(!r.reached.contains(&NodeId(3)));
        assert!((r.topo_beta(NodeId(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pruning_stops_expansion() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let mut mask = vec![false; 4];
        mask[1] = true;
        mask[2] = true;
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                prune: Some(&mask),
                ..Default::default()
            },
        );
        // Both intermediate nodes are landmarks: their scores exist but
        // node 3 is never reached.
        assert!(r.topo_beta(NodeId(1)) > 0.0);
        assert_eq!(r.topo_beta(NodeId(3)), 0.0);
    }

    #[test]
    fn cycles_converge() {
        // 0 <-> 1 two-cycle plus 1 -> 2.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        let l = TopicSet::single(Topic::Social);
        b.add_edge(n[0], n[1], l);
        b.add_edge(n[1], n[0], l);
        b.add_edge(n[1], n[2], l);
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Social], PropagateOpts::default());
        assert!(r.converged);
        // Geometric series over the 2-cycle: topo(0,1) = β + β³ + β⁵ ...
        let b2 = 0.3f64 * 0.3;
        let expected = 0.3 / (1.0 - b2);
        assert!((r.topo_beta(NodeId(1)) - expected).abs() < 1e-9);
    }

    #[test]
    fn topo_only_variant_has_zero_sigma() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::TopoOnly);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        assert_eq!(r.sigma(NodeId(3), Topic::Technology), 0.0);
        assert!(r.topo_beta(NodeId(3)) > 0.0);
    }

    #[test]
    fn recommendation_vector_packs_queried_topics() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology, Topic::Business],
            PropagateOpts::default(),
        );
        let v = r.recommendation_vector(NodeId(3));
        assert_eq!(
            v.get(Topic::Technology),
            r.sigma(NodeId(3), Topic::Technology)
        );
        assert_eq!(v.get(Topic::Business), r.sigma(NodeId(3), Topic::Business));
        assert_eq!(v.get(Topic::War), 0.0);
        assert!(v.get(Topic::Technology) > 0.0);
    }

    #[test]
    fn top_n_excludes_source_and_sorts() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        let top = r.top_n_topo(10);
        assert!(!top.iter().any(|&(v, _)| v == NodeId(0)));
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn unreached_nodes_absent() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::single(Topic::War));
        // Node 2 is isolated.
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::War], PropagateOpts::default());
        assert!(!r.reached.contains(&NodeId(2)));
        assert_eq!(r.topo_beta(NodeId(2)), 0.0);
    }
}
