//! The iterative score computation (Proposition 1 / Algorithm 1) as
//! level-synchronous frontier propagation.
//!
//! Level `k` holds the mass of walks of length exactly `k` out of the
//! source. One pass over the out-edges of the current frontier pushes
//! level `k` into level `k+1`:
//!
//! ```text
//! topo_β^{k+1}[v]  += β  · topo_β^k[u]                        (Eq. 2 mass)
//! topo_αβ^{k+1}[v] += αβ · topo_αβ^k[u]
//! σ^{k+1}[v][t]    += β · σ^k[u][t] + topo_αβ^k[u] · ω_{u→v}(t)   (Eq. 5)
//! ```
//!
//! with `ω_{u→v}(t) = βα · maxsim(label(u→v), t) · auth(v, t)`. The
//! accumulated sums over all levels are exactly `topo_β(u,v)`,
//! `topo_αβ(u,v)` and `σ(u,v,t)`.
//!
//! The engine serves three callers:
//!
//! * **exact recommendation** — run to convergence from a query node;
//! * **landmark preprocessing** (Algorithm 1) — run to convergence
//!   from each landmark, for all topics at once;
//! * **landmark queries** (Algorithm 2) — run at small depth with
//!   *pruning*: a frontier node flagged as a landmark is not expanded,
//!   "to avoid considering twice paths which pass through a landmark"
//!   (Section 5.4).
//!
//! Ablation variants (`Tr−auth`, `Tr−sim`, Katz) reuse the same sweep
//! with the corresponding factor replaced by 1 (or dropped), so the
//! Figure 4 comparisons measure scoring semantics, not implementation
//! differences.
//!
//! # The zero-allocation path
//!
//! A propagation touches six O(n) level/accumulator buffers plus an
//! O(n·|topics|) sigma buffer. Allocating and zeroing them per call
//! dominates query latency at scale, so the hot entry point is
//! [`Propagator::propagate_into`], which runs inside a caller-owned
//! [`PropWorkspace`]:
//!
//! * `seen` / `in_next` membership is **epoch-stamped** — a `u32`
//!   generation per slot compared against the workspace's current
//!   epoch — so starting a run is O(1) instead of an O(n) `memset`;
//! * float buffers are **sparsely cleared**: only the slots the
//!   *previous* run actually touched (its reached set) are zeroed at
//!   the start of the next run;
//! * frontier vectors, the reached list and the per-run topic tables
//!   are reused in place.
//!
//! A workspace-reused run is bit-identical to a fresh-buffer run (the
//! conformance suite pins this across the corpus presets); the classic
//! [`Propagator::propagate`] signature survives as a thin wrapper that
//! spins up a one-shot workspace. Batched callers hold one workspace
//! per [`fui_exec`] worker (`fui_exec::WorkerLocal`), collapsing
//! `propagate.workspace.allocs` to the worker count.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use fui_graph::{NodeId, SocialGraph};
use fui_obs as obs;
use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};
use crate::topk;

/// Interned metric handles for the propagation engine. Counts are
/// accumulated in locals during a run and flushed here once per
/// propagation, so the per-edge hot loop never touches an atomic.
struct PropMetrics {
    calls: obs::Counter,
    edges_relaxed: obs::Counter,
    levels: obs::Counter,
    pruned_at: obs::Counter,
    stop_converged: obs::Counter,
    stop_depth_cap: obs::Counter,
    stop_frontier_empty: obs::Counter,
    workspace_reuses: obs::Counter,
    workspace_allocs: obs::Counter,
    sparse_cleared: obs::Counter,
    simrows_built: obs::Counter,
    frontier_peak: obs::Gauge,
    residual: obs::Gauge,
    workspace_peak_bytes: obs::Gauge,
    frontier_size: obs::Hist,
}

fn prop_metrics() -> &'static PropMetrics {
    static METRICS: OnceLock<PropMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PropMetrics {
        calls: obs::counter("propagate.calls"),
        edges_relaxed: obs::counter("propagate.edges_relaxed"),
        levels: obs::counter("propagate.levels"),
        pruned_at: obs::counter("landmark.pruned_at"),
        stop_converged: obs::counter("propagate.stop.converged"),
        stop_depth_cap: obs::counter("propagate.stop.depth_cap"),
        stop_frontier_empty: obs::counter("propagate.stop.frontier_empty"),
        workspace_reuses: obs::counter("propagate.workspace.reuses"),
        workspace_allocs: obs::counter("propagate.workspace.allocs"),
        sparse_cleared: obs::counter("propagate.sparse_cleared"),
        simrows_built: obs::counter("propagate.simrows.built"),
        frontier_peak: obs::gauge("propagate.frontier_peak"),
        residual: obs::gauge("propagate.residual"),
        workspace_peak_bytes: obs::gauge("propagate.workspace.peak_bytes"),
        frontier_size: obs::hist("propagate.frontier_size"),
    })
}

/// Why a propagation run stopped (mirrored into stop-reason counters).
#[derive(Clone, Copy)]
enum StopReason {
    Converged,
    DepthCap,
    FrontierEmpty,
}

/// Options of a single propagation run.
#[derive(Clone, Copy, Default)]
pub struct PropagateOpts<'a> {
    /// Additional depth cap on top of `ScoreParams::max_depth`
    /// (0 keeps only the source; `None` means params-only).
    pub max_depth: Option<u32>,
    /// Dense landmark mask: frontier nodes (other than the source)
    /// flagged `true` are collected but not expanded.
    pub prune: Option<&'a [bool]>,
}

/// Sentinel in the topic→column table: topic not queried.
const COL_UNQUERIED: u32 = u32::MAX;

/// Builds the topic→sigma-column table for a run: each queried topic
/// maps to the column of its *first* occurrence (matching the linear
/// scan it replaces); unqueried topics map to [`COL_UNQUERIED`].
fn build_topic_cols(topics: &[Topic]) -> [u32; NUM_TOPICS] {
    let mut cols = [COL_UNQUERIED; NUM_TOPICS];
    for (ti, t) in topics.iter().enumerate() {
        let slot = &mut cols[t.index()];
        if *slot == COL_UNQUERIED {
            *slot = ti as u32;
        }
    }
    cols
}

/// Shared top-n readout over a reached set (score desc, ties by id,
/// source excluded, zero scores dropped) — partial heap selection, not
/// a full sort.
fn top_n_over(
    reached: &[NodeId],
    source: NodeId,
    n: usize,
    score: impl Fn(NodeId) -> f64,
) -> Vec<(NodeId, f64)> {
    topk::select_top_k(
        n,
        reached
            .iter()
            .copied()
            .filter(|&v| v != source)
            .map(|v| (v, score(v)))
            .filter(|&(_, s)| s > 0.0),
    )
}

/// Reusable scratch arena for propagation runs.
///
/// Holds every buffer a run needs — level buffers, accumulators,
/// frontier vectors, the reached list and the per-run topic tables —
/// sized lazily to the graphs it serves and reused across runs.
/// Membership sets are epoch-stamped (`u32` generation per slot) and
/// float buffers are sparsely cleared, so starting a run costs
/// O(previous reached set), not O(n).
///
/// A workspace is cheap to create empty and grows to its largest run;
/// batched callers keep one per [`fui_exec`] worker. Reusing one
/// workspace across runs of *different* graphs or topic sets is
/// supported and bit-exact (buffers are cleared and re-laid-out as
/// needed).
#[derive(Clone, Debug, Default)]
pub struct PropWorkspace {
    /// Epoch of the current run; `seen[v] == run_epoch` ⇔ reached.
    run_epoch: u32,
    /// Epoch of the current level; `in_next[v] == level_epoch` ⇔
    /// already queued for the next frontier.
    level_epoch: u32,
    seen: Vec<u32>,
    in_next: Vec<u32>,
    // Accumulators over all levels.
    acc_sigma: Vec<f64>,
    acc_tb: Vec<f64>,
    acc_tab: Vec<f64>,
    // Level buffers (current / next), sparse via frontier lists.
    cur_sig: Vec<f64>,
    next_sig: Vec<f64>,
    cur_tb: Vec<f64>,
    next_tb: Vec<f64>,
    cur_tab: Vec<f64>,
    next_tab: Vec<f64>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    reached: Vec<NodeId>,
    // Per-run topic tables.
    topics: Vec<Topic>,
    topic_idx: Vec<usize>,
    topic_cols: [u32; NUM_TOPICS],
    // Layout of the last run (for sparse clearing and readouts).
    n: usize,
    tc: usize,
    /// Whether the buffers hold a finished run's results.
    dirty: bool,
    source: NodeId,
    levels: u32,
    converged: bool,
}

impl PropWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> PropWorkspace {
        PropWorkspace {
            topic_cols: [COL_UNQUERIED; NUM_TOPICS],
            ..Default::default()
        }
    }

    /// Prepares the workspace for a run over `n` nodes and `tc` sigma
    /// columns: sparsely clears the previous run's slots, grows buffers
    /// if needed, advances the run epoch and installs the topic tables.
    fn begin_run(&mut self, n: usize, tc: usize, topics: &[Topic], metrics: &PropMetrics) {
        // Sparse clear: only slots the previous run dirtied. The level
        // `next_*` buffers are all-zero at the end of every run (each
        // level's writes are either consumed by the swap or never made),
        // and `cur_*` is dirty only at the final frontier, a subset of
        // the reached set.
        if self.dirty {
            let prev_tc = self.tc;
            for &v in &self.reached {
                let vi = v.index();
                self.acc_tb[vi] = 0.0;
                self.acc_tab[vi] = 0.0;
                self.cur_tb[vi] = 0.0;
                self.cur_tab[vi] = 0.0;
                if prev_tc > 0 {
                    let base = vi * prev_tc;
                    for s in &mut self.acc_sigma[base..base + prev_tc] {
                        *s = 0.0;
                    }
                    for s in &mut self.cur_sig[base..base + prev_tc] {
                        *s = 0.0;
                    }
                }
            }
            metrics.sparse_cleared.add(self.reached.len() as u64);
            self.reached.clear();
        }
        self.frontier.clear();
        self.next_frontier.clear();

        let grew = self.seen.len() < n || self.acc_sigma.len() < n * tc;
        if grew {
            metrics.workspace_allocs.incr();
        } else {
            metrics.workspace_reuses.incr();
        }
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.in_next.resize(n, 0);
            self.acc_tb.resize(n, 0.0);
            self.acc_tab.resize(n, 0.0);
            self.cur_tb.resize(n, 0.0);
            self.next_tb.resize(n, 0.0);
            self.cur_tab.resize(n, 0.0);
            self.next_tab.resize(n, 0.0);
        }
        if self.acc_sigma.len() < n * tc {
            self.acc_sigma.resize(n * tc, 0.0);
            self.cur_sig.resize(n * tc, 0.0);
            self.next_sig.resize(n * tc, 0.0);
        }
        if grew {
            // High-water mark of this workspace's arenas, recorded only
            // when they actually grow so steady-state reuse stays free.
            metrics
                .workspace_peak_bytes
                .record_max(self.size_bytes() as f64);
        }

        // O(1) membership reset: bump the generation. On the (rare)
        // wrap back to 0 the stamps are rewound so no stale slot can
        // collide with the fresh epoch.
        self.run_epoch = self.run_epoch.wrapping_add(1);
        if self.run_epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.run_epoch = 1;
        }

        self.topics.clear();
        self.topics.extend_from_slice(topics);
        self.topic_cols = build_topic_cols(topics);
        self.topic_idx.clear();
        self.topic_idx.extend(topics.iter().map(|t| t.index()));
        self.n = n;
        self.tc = tc;
        self.dirty = true;
    }

    /// Advances the per-level membership epoch (wrap-safe).
    fn next_level_epoch(&mut self) -> u32 {
        self.level_epoch = self.level_epoch.wrapping_add(1);
        if self.level_epoch == 0 {
            self.in_next.iter_mut().for_each(|s| *s = 0);
            self.level_epoch = 1;
        }
        self.level_epoch
    }

    /// Bytes currently held by the workspace arenas (membership stamps,
    /// accumulators, level buffers, frontier and topic tables). The
    /// per-run high-water mark is mirrored into the
    /// `propagate.workspace.peak_bytes` gauge.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.seen.capacity() + self.in_next.capacity()) * size_of::<u32>()
            + (self.acc_sigma.capacity()
                + self.acc_tb.capacity()
                + self.acc_tab.capacity()
                + self.cur_sig.capacity()
                + self.next_sig.capacity()
                + self.cur_tb.capacity()
                + self.next_tb.capacity()
                + self.cur_tab.capacity()
                + self.next_tab.capacity())
                * size_of::<f64>()
            + (self.frontier.capacity() + self.next_frontier.capacity()) * size_of::<u32>()
            + self.reached.capacity() * size_of::<NodeId>()
            + self.topics.capacity() * size_of::<Topic>()
            + self.topic_idx.capacity() * size_of::<usize>()
    }

    /// Converts the last run into an owned [`Propagation`], consuming
    /// the workspace (buffers are moved out, not copied). Intended for
    /// one-shot workspaces; reuse paths read through [`PropRun`]
    /// instead.
    pub fn into_propagation(mut self) -> Propagation {
        let (n, tc) = (self.n, self.tc);
        let sigma = if tc > 0 {
            let mut s = std::mem::take(&mut self.acc_sigma);
            s.truncate(n * tc);
            s
        } else {
            // Uniform result shape even under TopoOnly: zeros for
            // every requested topic.
            vec![0.0; n * self.topics.len()]
        };
        let mut topo_beta = std::mem::take(&mut self.acc_tb);
        topo_beta.truncate(n);
        let mut topo_alphabeta = std::mem::take(&mut self.acc_tab);
        topo_alphabeta.truncate(n);
        Propagation {
            topics: std::mem::take(&mut self.topics),
            topic_cols: self.topic_cols,
            sigma,
            topo_beta,
            topo_alphabeta,
            reached: std::mem::take(&mut self.reached),
            source: self.source,
            levels: self.levels,
            converged: self.converged,
        }
    }
}

/// Read-only view of the run a [`PropWorkspace`] holds — the
/// zero-allocation counterpart of [`Propagation`], borrowing the
/// workspace buffers instead of owning copies.
pub struct PropRun<'a> {
    ws: &'a PropWorkspace,
}

impl PropRun<'_> {
    /// The query topics, in sigma column order.
    pub fn topics(&self) -> &[Topic] {
        &self.ws.topics
    }

    /// Nodes with any accumulated mass, source first, in first-reached
    /// order.
    pub fn reached(&self) -> &[NodeId] {
        &self.ws.reached
    }

    /// Source node of the run.
    pub fn source(&self) -> NodeId {
        self.ws.source
    }

    /// Number of levels propagated.
    pub fn levels(&self) -> u32 {
        self.ws.levels
    }

    /// Whether the tolerance criterion was met.
    pub fn converged(&self) -> bool {
        self.ws.converged
    }

    /// `σ(source, v, topics[ti])`.
    #[inline]
    pub fn sigma_at(&self, v: NodeId, ti: usize) -> f64 {
        debug_assert!(ti < self.ws.topics.len(), "topic column out of range");
        if self.ws.tc == 0 {
            return 0.0;
        }
        self.ws.acc_sigma[v.index() * self.ws.tc + ti]
    }

    /// `σ(source, v, t)`; 0 for a topic that was not queried.
    #[inline]
    pub fn sigma(&self, v: NodeId, t: Topic) -> f64 {
        match self.ws.topic_cols[t.index()] {
            COL_UNQUERIED => 0.0,
            ti => self.sigma_at(v, ti as usize),
        }
    }

    /// `topo_β(source, v)` (the source's own entry includes the empty
    /// walk's 1).
    #[inline]
    pub fn topo_beta(&self, v: NodeId) -> f64 {
        self.ws.acc_tb[v.index()]
    }

    /// `topo_αβ(source, v)`.
    #[inline]
    pub fn topo_alphabeta(&self, v: NodeId) -> f64 {
        self.ws.acc_tab[v.index()]
    }

    /// The recommendation vector `R_{u,v}` of Table 1 (unqueried
    /// topics read 0).
    pub fn recommendation_vector(&self, v: NodeId) -> fui_taxonomy::TopicWeights {
        let mut w = fui_taxonomy::TopicWeights::zero();
        for (ti, &t) in self.ws.topics.iter().enumerate() {
            w.set(t, self.sigma_at(v, ti));
        }
        w
    }

    /// Top-`n` nodes by `σ(·, topics[ti])`, excluding the source,
    /// highest first (ties by node id).
    pub fn top_n_sigma(&self, ti: usize, n: usize) -> Vec<(NodeId, f64)> {
        top_n_over(&self.ws.reached, self.ws.source, n, |v| {
            self.sigma_at(v, ti)
        })
    }

    /// Top-`n` nodes by `topo_β`, excluding the source.
    pub fn top_n_topo(&self, n: usize) -> Vec<(NodeId, f64)> {
        top_n_over(&self.ws.reached, self.ws.source, n, |v| self.topo_beta(v))
    }
}

/// Result of a propagation: accumulated scores over every reached node.
#[derive(Clone, Debug)]
pub struct Propagation {
    /// The query topics, in the order `sigma` is laid out.
    pub topics: Vec<Topic>,
    /// Topic→sigma-column lookup (first occurrence wins), so per-node
    /// readouts by [`Topic`] cost O(1) instead of a linear scan.
    topic_cols: [u32; NUM_TOPICS],
    /// `σ(source, v, t)` — flat `[v * topics.len() + ti]`.
    sigma: Vec<f64>,
    /// `topo_β(source, v)` (Katz mass, empty walk included at the
    /// source).
    topo_beta: Vec<f64>,
    /// `topo_αβ(source, v)`.
    topo_alphabeta: Vec<f64>,
    /// Nodes with any accumulated mass, source first, in first-reached
    /// order.
    pub reached: Vec<NodeId>,
    /// Source node.
    pub source: NodeId,
    /// Number of levels propagated (max walk length considered).
    pub levels: u32,
    /// Whether the tolerance criterion was met (vs. hitting the depth
    /// cap).
    pub converged: bool,
}

impl Propagation {
    /// `σ(source, v, topics[ti])`.
    #[inline]
    pub fn sigma_at(&self, v: NodeId, ti: usize) -> f64 {
        self.sigma[v.index() * self.topics.len() + ti]
    }

    /// `σ(source, v, t)`; 0 for a topic that was not queried.
    #[inline]
    pub fn sigma(&self, v: NodeId, t: Topic) -> f64 {
        match self.topic_cols[t.index()] {
            COL_UNQUERIED => 0.0,
            ti => self.sigma_at(v, ti as usize),
        }
    }

    /// `topo_β(source, v)` — the Katz score (the source's own entry
    /// includes the empty walk's 1).
    #[inline]
    pub fn topo_beta(&self, v: NodeId) -> f64 {
        self.topo_beta[v.index()]
    }

    /// `topo_αβ(source, v)`.
    #[inline]
    pub fn topo_alphabeta(&self, v: NodeId) -> f64 {
        self.topo_alphabeta[v.index()]
    }

    /// The recommendation vector `R_{u,v}` of Table 1: the score of
    /// `v` on every queried topic, packed into a [`fui_taxonomy::TopicWeights`]
    /// (unqueried topics read 0).
    pub fn recommendation_vector(&self, v: NodeId) -> fui_taxonomy::TopicWeights {
        let mut w = fui_taxonomy::TopicWeights::zero();
        for (ti, &t) in self.topics.iter().enumerate() {
            w.set(t, self.sigma_at(v, ti));
        }
        w
    }

    /// Top-`n` nodes by `σ(·, topics[ti])`, excluding the source,
    /// highest first (ties by node id).
    pub fn top_n_sigma(&self, ti: usize, n: usize) -> Vec<(NodeId, f64)> {
        top_n_over(&self.reached, self.source, n, |v| self.sigma_at(v, ti))
    }

    /// Top-`n` nodes by `topo_β`, excluding the source.
    pub fn top_n_topo(&self, n: usize) -> Vec<(NodeId, f64)> {
        top_n_over(&self.reached, self.source, n, |v| self.topo_beta(v))
    }
}

/// Per-graph cache of `maxsim` similarity rows: one row per distinct
/// edge label set, resolved to a row index per global out-edge CSR
/// position. The rows depend only on the graph's edge labels and the
/// similarity matrix — not on score parameters or variant — so one
/// cache serves the full scorer *and* every ablation variant built
/// over the same graph (`Tr−auth`, `Tr−sim`, Katz), sparing Figure-4
/// sweeps the identical recomputation per variant.
pub struct SimRowCache {
    /// `maxsim` rows, one per distinct edge label mask.
    sim_rows: Vec<[f64; NUM_TOPICS]>,
    /// Row index per global out-edge CSR position.
    edge_row: Vec<u32>,
}

impl SimRowCache {
    /// Scans the graph once and caches per-label-set similarity rows.
    pub fn build(graph: &SocialGraph, sim: &SimMatrix) -> SimRowCache {
        prop_metrics().simrows_built.incr();
        let mut mask_to_row: HashMap<u32, u32> = HashMap::new();
        let mut sim_rows: Vec<[f64; NUM_TOPICS]> = Vec::new();
        let mut edge_row = vec![0u32; graph.num_edges()];
        for u in graph.nodes() {
            for (pos, e) in graph.out_edges_indexed(u) {
                let idx = *mask_to_row.entry(e.labels.mask()).or_insert_with(|| {
                    let mut row = [0.0f64; NUM_TOPICS];
                    for (t_idx, slot) in row.iter_mut().enumerate() {
                        *slot = sim.max_sim(e.labels, Topic::from_index(t_idx));
                    }
                    sim_rows.push(row);
                    (sim_rows.len() - 1) as u32
                });
                edge_row[pos] = idx;
            }
        }
        if sim_rows.is_empty() {
            sim_rows.push([0.0; NUM_TOPICS]);
        }
        SimRowCache { sim_rows, edge_row }
    }

    /// Number of distinct label-set rows cached.
    pub fn num_rows(&self) -> usize {
        self.sim_rows.len()
    }

    /// Number of edge positions covered (must equal the graph's edge
    /// count to be usable with it).
    pub fn num_edges(&self) -> usize {
        self.edge_row.len()
    }
}

/// Shared per-graph scoring state: the similarity-row cache (one row of
/// `maxsim(labels, ·)` per distinct edge label set, resolved per edge
/// position once) and the authority index.
pub struct Propagator<'g> {
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    params: ScoreParams,
    variant: ScoreVariant,
    /// Shared similarity-row cache (see [`SimRowCache`]).
    rows: Arc<SimRowCache>,
    /// All-ones row used to neutralise a factor under ablations.
    ones: [f64; NUM_TOPICS],
}

impl<'g> Propagator<'g> {
    /// Builds a propagator; scans the graph once to cache per-label-set
    /// similarity rows.
    pub fn new(
        graph: &'g SocialGraph,
        authority: &'g AuthorityIndex,
        sim: &SimMatrix,
        params: ScoreParams,
        variant: ScoreVariant,
    ) -> Propagator<'g> {
        Self::with_sim_cache(
            graph,
            authority,
            Arc::new(SimRowCache::build(graph, sim)),
            params,
            variant,
        )
    }

    /// Builds a propagator over a pre-built [`SimRowCache`] — the way
    /// ablation variants and bench contexts share one row scan across
    /// many propagators of the same graph.
    ///
    /// # Panics
    ///
    /// Panics if the cache was built for a graph with a different edge
    /// count, or the parameters are out of range.
    pub fn with_sim_cache(
        graph: &'g SocialGraph,
        authority: &'g AuthorityIndex,
        rows: Arc<SimRowCache>,
        params: ScoreParams,
        variant: ScoreVariant,
    ) -> Propagator<'g> {
        params.check_ranges().expect("invalid score parameters");
        assert_eq!(
            rows.num_edges(),
            graph.num_edges(),
            "sim-row cache does not match this graph's edge positions"
        );
        Propagator {
            graph,
            authority,
            params,
            variant,
            rows,
            ones: [1.0; NUM_TOPICS],
        }
    }

    /// The graph being scored.
    pub fn graph(&self) -> &SocialGraph {
        self.graph
    }

    /// The score parameters.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// The score variant.
    pub fn variant(&self) -> ScoreVariant {
        self.variant
    }

    /// The shared similarity-row cache (clone the `Arc` to build
    /// sibling variants without rescanning the graph).
    pub fn sim_cache(&self) -> &Arc<SimRowCache> {
        &self.rows
    }

    /// Runs the iterative computation from `source` for the given
    /// query topics (empty slice is valid and yields a pure Katz run).
    ///
    /// Thin wrapper over [`propagate_into`](Self::propagate_into) with
    /// a one-shot workspace; batched callers should reuse a
    /// [`PropWorkspace`] instead.
    pub fn propagate(
        &self,
        source: NodeId,
        topics: &[Topic],
        opts: PropagateOpts<'_>,
    ) -> Propagation {
        let mut ws = PropWorkspace::new();
        self.propagate_into(&mut ws, source, topics, opts);
        ws.into_propagation()
    }

    /// Runs the iterative computation inside a reusable workspace —
    /// the allocation-free entry point. Returns a [`PropRun`] view of
    /// the results, valid until the workspace's next run.
    ///
    /// Bit-equality guarantee: for the same propagator, source, topics
    /// and options, the scores read through the returned view are
    /// bit-identical to a fresh [`propagate`](Self::propagate) call,
    /// whatever ran in the workspace before.
    pub fn propagate_into<'w>(
        &self,
        ws: &'w mut PropWorkspace,
        source: NodeId,
        topics: &[Topic],
        opts: PropagateOpts<'_>,
    ) -> PropRun<'w> {
        let n = self.graph.num_nodes();
        assert!(source.index() < n, "source not in graph");
        let tc = if self.variant == ScoreVariant::TopoOnly {
            0
        } else {
            topics.len()
        };
        let beta = self.params.beta;
        let ab = self.params.alpha * beta;
        let depth_cap = self
            .params
            .max_depth
            .min(opts.max_depth.unwrap_or(u32::MAX));

        let metrics = prop_metrics();
        ws.begin_run(n, tc, topics, metrics);
        ws.frontier.push(source.0);
        ws.cur_tb[source.index()] = 1.0;
        ws.cur_tab[source.index()] = 1.0;

        let mut acc_tb_total = 0.0f64;
        let mut levels = 0u32;
        let mut converged = false;

        // Observability locals, flushed to the registry once at the end.
        let mut edges_relaxed = 0u64;
        let mut pruned_at = 0u64;
        let mut frontier_peak = 0u64;
        let mut residual = 0.0f64;
        let stop_reason;

        loop {
            frontier_peak = frontier_peak.max(ws.frontier.len() as u64);
            metrics.frontier_size.record(ws.frontier.len() as u64);

            // Fold the current level into the accumulators.
            let mut level_tb = 0.0f64;
            for &u in &ws.frontier {
                let ui = u as usize;
                if ws.seen[ui] != ws.run_epoch {
                    ws.seen[ui] = ws.run_epoch;
                    ws.reached.push(NodeId(u));
                }
                ws.acc_tb[ui] += ws.cur_tb[ui];
                ws.acc_tab[ui] += ws.cur_tab[ui];
                level_tb += ws.cur_tb[ui];
                if tc > 0 {
                    let base = ui * tc;
                    for ti in 0..tc {
                        ws.acc_sigma[base + ti] += ws.cur_sig[base + ti];
                    }
                }
            }
            acc_tb_total += level_tb;
            if acc_tb_total > 0.0 {
                residual = level_tb / acc_tb_total;
            }

            // Convergence: the level's topological mass (the slowest
            // decaying of the three) is negligible relative to the
            // accumulated mass.
            if levels > 0 && level_tb < self.params.tolerance * acc_tb_total {
                converged = true;
                stop_reason = StopReason::Converged;
                break;
            }
            if levels >= depth_cap {
                stop_reason = StopReason::DepthCap;
                break;
            }

            // Expand the frontier.
            let level_epoch = ws.next_level_epoch();
            ws.next_frontier.clear();
            for fi in 0..ws.frontier.len() {
                let u = ws.frontier[fi];
                let ui = u as usize;
                if u != source.0 {
                    if let Some(mask) = opts.prune {
                        if mask[ui] {
                            pruned_at += 1;
                            continue;
                        }
                    }
                }
                let tb_u = ws.cur_tb[ui];
                let tab_u = ws.cur_tab[ui];
                let sig_base = ui * tc;
                for (pos, e) in self.graph.out_edges_indexed(NodeId(u)) {
                    edges_relaxed += 1;
                    let vi = e.node.index();
                    if ws.in_next[vi] != level_epoch {
                        ws.in_next[vi] = level_epoch;
                        ws.next_frontier.push(e.node.0);
                    }
                    ws.next_tb[vi] += beta * tb_u;
                    ws.next_tab[vi] += ab * tab_u;
                    if tc > 0 {
                        let (sim_row, auth_row): (&[f64], &[f64]) = match self.variant {
                            ScoreVariant::Full => (
                                &self.rows.sim_rows[self.rows.edge_row[pos] as usize],
                                self.authority.auth_row(e.node),
                            ),
                            ScoreVariant::NoAuthority => (
                                &self.rows.sim_rows[self.rows.edge_row[pos] as usize],
                                &self.ones,
                            ),
                            ScoreVariant::NoSimilarity => {
                                (&self.ones, self.authority.auth_row(e.node))
                            }
                            ScoreVariant::TopoOnly => unreachable!("tc == 0"),
                        };
                        let vbase = vi * tc;
                        for ti in 0..tc {
                            let t_idx = ws.topic_idx[ti];
                            let w = ab * sim_row[t_idx] * auth_row[t_idx];
                            ws.next_sig[vbase + ti] += beta * ws.cur_sig[sig_base + ti] + tab_u * w;
                        }
                    }
                }
            }

            // Clear the current level's slots and swap buffers (the
            // epoch stamp already retired `in_next` membership).
            for &u in &ws.frontier {
                let ui = u as usize;
                ws.cur_tb[ui] = 0.0;
                ws.cur_tab[ui] = 0.0;
                if tc > 0 {
                    let base = ui * tc;
                    for ti in 0..tc {
                        ws.cur_sig[base + ti] = 0.0;
                    }
                }
            }
            std::mem::swap(&mut ws.cur_sig, &mut ws.next_sig);
            std::mem::swap(&mut ws.cur_tb, &mut ws.next_tb);
            std::mem::swap(&mut ws.cur_tab, &mut ws.next_tab);
            std::mem::swap(&mut ws.frontier, &mut ws.next_frontier);

            levels += 1;
            if ws.frontier.is_empty() {
                converged = true;
                stop_reason = StopReason::FrontierEmpty;
                break;
            }
        }

        // Flush the batched observability locals.
        metrics.calls.incr();
        metrics.edges_relaxed.add(edges_relaxed);
        metrics.levels.add(levels as u64);
        metrics.pruned_at.add(pruned_at);
        metrics.frontier_peak.record_max(frontier_peak as f64);
        metrics.residual.set(residual);
        match stop_reason {
            StopReason::Converged => metrics.stop_converged.incr(),
            StopReason::DepthCap => metrics.stop_depth_cap.incr(),
            StopReason::FrontierEmpty => metrics.stop_frontier_empty.incr(),
        }

        ws.source = source;
        ws.levels = levels;
        ws.converged = converged;
        PropRun { ws }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    fn diamond() -> SocialGraph {
        // 0 -> {1, 2} -> 3, labels all technology.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        let l = TopicSet::single(Topic::Technology);
        b.add_edge(n[0], n[1], l);
        b.add_edge(n[0], n[2], l);
        b.add_edge(n[1], n[3], l);
        b.add_edge(n[2], n[3], l);
        b.build()
    }

    fn params() -> ScoreParams {
        ScoreParams {
            alpha: 0.7,
            beta: 0.3,
            tolerance: 1e-12,
            max_depth: 30,
        }
    }

    #[test]
    fn topo_counts_all_walks() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        // topo_beta(0, 3) = 2 walks of length 2 = 2 * 0.09.
        assert!((r.topo_beta(NodeId(3)) - 2.0 * 0.09).abs() < 1e-12);
        assert!((r.topo_beta(NodeId(1)) - 0.3).abs() < 1e-12);
        // Source includes the empty walk.
        assert!((r.topo_beta(NodeId(0)) - 1.0).abs() < 1e-12);
        assert!(r.converged);
    }

    #[test]
    fn sigma_on_single_edge() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        // σ(0,1,tech): walk 0→1 only. ω = βα·sim·auth(1). Node 1 has
        // one follower on tech; node 3 has two (the per-topic max).
        let auth1 = idx.auth(NodeId(1), Topic::Technology);
        let expected = 0.3 * 0.7 * 1.0 * auth1;
        assert!((r.sigma(NodeId(1), Topic::Technology) - expected).abs() < 1e-12);
    }

    #[test]
    fn depth_cap_limits_walks() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                max_depth: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(r.topo_beta(NodeId(3)), 0.0);
        assert!(!r.reached.contains(&NodeId(3)));
        assert!((r.topo_beta(NodeId(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn depth_zero_keeps_only_the_source() {
        // `max_depth: Some(0)` is the degenerate-but-legal query "the
        // source and nothing else": one level folded, no expansion.
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                max_depth: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(r.reached, vec![NodeId(0)]);
        assert_eq!(r.levels, 0);
        assert!(!r.converged, "a depth-cap stop is not convergence");
        // Only the empty walk: topo mass 1 at the source, nothing else.
        assert_eq!(r.topo_beta(NodeId(0)), 1.0);
        assert_eq!(r.topo_alphabeta(NodeId(0)), 1.0);
        for v in [NodeId(1), NodeId(2), NodeId(3)] {
            assert_eq!(r.topo_beta(v), 0.0);
            assert_eq!(r.sigma(v, Topic::Technology), 0.0);
        }
        assert_eq!(r.sigma(NodeId(0), Topic::Technology), 0.0);
        assert!(r.top_n_topo(10).is_empty());
    }

    #[test]
    fn pruning_stops_expansion() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let mut mask = vec![false; 4];
        mask[1] = true;
        mask[2] = true;
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                prune: Some(&mask),
                ..Default::default()
            },
        );
        // Both intermediate nodes are landmarks: their scores exist but
        // node 3 is never reached.
        assert!(r.topo_beta(NodeId(1)) > 0.0);
        assert_eq!(r.topo_beta(NodeId(3)), 0.0);
    }

    #[test]
    fn source_flagged_as_landmark_still_expands() {
        // Section 5.4's exception: the query node itself may be a
        // landmark, but pruning must never stop the exploration at the
        // source — otherwise no query from a landmark would see its
        // own neighbourhood.
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let mask = vec![true; 4]; // every node flagged, source included
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology],
            PropagateOpts {
                prune: Some(&mask),
                ..Default::default()
            },
        );
        // The source expanded (neighbours reached with full one-hop
        // mass) but the flagged neighbours did not.
        assert!((r.topo_beta(NodeId(1)) - 0.3).abs() < 1e-12);
        assert!((r.topo_beta(NodeId(2)) - 0.3).abs() < 1e-12);
        assert!(r.sigma(NodeId(1), Topic::Technology) > 0.0);
        assert_eq!(r.topo_beta(NodeId(3)), 0.0);
        assert!(!r.reached.contains(&NodeId(3)));
        // And the unpruned run strictly dominates at the blocked node.
        let unpruned = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        assert!(unpruned.topo_beta(NodeId(3)) > 0.0);
    }

    #[test]
    fn cycles_converge() {
        // 0 <-> 1 two-cycle plus 1 -> 2.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        let l = TopicSet::single(Topic::Social);
        b.add_edge(n[0], n[1], l);
        b.add_edge(n[1], n[0], l);
        b.add_edge(n[1], n[2], l);
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Social], PropagateOpts::default());
        assert!(r.converged);
        // Geometric series over the 2-cycle: topo(0,1) = β + β³ + β⁵ ...
        let b2 = 0.3f64 * 0.3;
        let expected = 0.3 / (1.0 - b2);
        assert!((r.topo_beta(NodeId(1)) - expected).abs() < 1e-9);
    }

    #[test]
    fn topo_only_variant_has_zero_sigma() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::TopoOnly);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        assert_eq!(r.sigma(NodeId(3), Topic::Technology), 0.0);
        assert!(r.topo_beta(NodeId(3)) > 0.0);
    }

    #[test]
    fn recommendation_vector_packs_queried_topics() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(
            NodeId(0),
            &[Topic::Technology, Topic::Business],
            PropagateOpts::default(),
        );
        let v = r.recommendation_vector(NodeId(3));
        assert_eq!(
            v.get(Topic::Technology),
            r.sigma(NodeId(3), Topic::Technology)
        );
        assert_eq!(v.get(Topic::Business), r.sigma(NodeId(3), Topic::Business));
        assert_eq!(v.get(Topic::War), 0.0);
        assert!(v.get(Topic::Technology) > 0.0);
    }

    #[test]
    fn top_n_excludes_source_and_sorts() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        let top = r.top_n_topo(10);
        assert!(!top.iter().any(|&(v, _)| v == NodeId(0)));
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn unreached_nodes_absent() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::single(Topic::War));
        // Node 2 is isolated.
        let g = b.build();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::War], PropagateOpts::default());
        assert!(!r.reached.contains(&NodeId(2)));
        assert_eq!(r.topo_beta(NodeId(2)), 0.0);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_runs() {
        // One workspace across runs that change source, topic count
        // (sigma layout!), depth and pruning — every reused run must
        // reproduce the fresh-buffer run bit for bit.
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let mut mask = vec![false; 4];
        mask[2] = true;
        let specs: Vec<(NodeId, Vec<Topic>, PropagateOpts<'_>)> = vec![
            (NodeId(0), vec![Topic::Technology], PropagateOpts::default()),
            (
                NodeId(1),
                vec![Topic::Technology, Topic::Business, Topic::War],
                PropagateOpts::default(),
            ),
            (
                NodeId(0),
                vec![],
                PropagateOpts {
                    max_depth: Some(2),
                    ..Default::default()
                },
            ),
            (
                NodeId(0),
                vec![Topic::Social],
                PropagateOpts {
                    prune: Some(&mask),
                    ..Default::default()
                },
            ),
            (
                NodeId(3),
                vec![Topic::Technology],
                PropagateOpts {
                    max_depth: Some(0),
                    ..Default::default()
                },
            ),
        ];
        let mut ws = PropWorkspace::new();
        for (source, topics, opts) in &specs {
            let fresh = p.propagate(*source, topics, *opts);
            let reused = p.propagate_into(&mut ws, *source, topics, *opts);
            assert_eq!(reused.reached(), &fresh.reached[..]);
            assert_eq!(reused.levels(), fresh.levels);
            assert_eq!(reused.converged(), fresh.converged);
            for v in g.nodes() {
                assert_eq!(
                    reused.topo_beta(v).to_bits(),
                    fresh.topo_beta(v).to_bits(),
                    "topo_beta bits at {v}"
                );
                assert_eq!(
                    reused.topo_alphabeta(v).to_bits(),
                    fresh.topo_alphabeta(v).to_bits(),
                    "topo_alphabeta bits at {v}"
                );
                for ti in 0..topics.len() {
                    assert_eq!(
                        reused.sigma_at(v, ti).to_bits(),
                        fresh.sigma_at(v, ti).to_bits(),
                        "sigma bits at {v} col {ti}"
                    );
                }
            }
        }
    }

    #[test]
    fn sigma_lookup_matches_linear_scan() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        // Duplicate topic: the cached lookup must keep first-occurrence
        // semantics, like the `position` scan it replaces.
        let topics = [Topic::Technology, Topic::Business, Topic::Technology];
        let r = p.propagate(NodeId(0), &topics, PropagateOpts::default());
        for v in g.nodes() {
            for t in Topic::ALL {
                let scanned = match topics.iter().position(|&q| q == t) {
                    Some(ti) => r.sigma_at(v, ti),
                    None => 0.0,
                };
                assert_eq!(r.sigma(v, t).to_bits(), scanned.to_bits(), "{v} {t}");
            }
        }
    }

    #[test]
    fn sim_cache_is_shareable_across_variants() {
        let g = diamond();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let cache = Arc::new(SimRowCache::build(&g, &sim));
        assert!(cache.num_rows() >= 1);
        assert_eq!(cache.num_edges(), g.num_edges());
        let full =
            Propagator::with_sim_cache(&g, &idx, Arc::clone(&cache), params(), ScoreVariant::Full);
        let fresh = Propagator::new(&g, &idx, &sim, params(), ScoreVariant::Full);
        let a = full.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        let b = fresh.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        for v in g.nodes() {
            assert_eq!(
                a.sigma(v, Topic::Technology).to_bits(),
                b.sigma(v, Topic::Technology).to_bits()
            );
        }
        // The ablation sharing the cache still neutralises its factor.
        let no_sim = Propagator::with_sim_cache(
            &g,
            &idx,
            Arc::clone(&cache),
            params(),
            ScoreVariant::NoSimilarity,
        );
        let c = no_sim.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        assert!(c.sigma(NodeId(1), Topic::Technology) > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match this graph")]
    fn mismatched_sim_cache_is_rejected() {
        let g = diamond();
        let mut b = GraphBuilder::new();
        let x = b.add_node(TopicSet::empty());
        let y = b.add_node(TopicSet::empty());
        b.add_edge(x, y, TopicSet::single(Topic::War));
        let other = b.build();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let cache = Arc::new(SimRowCache::build(&other, &sim));
        let _ = Propagator::with_sim_cache(&g, &idx, cache, params(), ScoreVariant::Full);
    }
}
