//! The per-(user, topic) authority score.
//!
//! Section 3.2 of the paper:
//!
//! ```text
//!                |Γu(t)|     log(1 + |Γu(t)|)
//! auth(u, t) =  ───────── · ─────────────────────────
//!                 |Γu|       log(1 + max_v |Γv(t)|)
//!                 local            global
//! ```
//!
//! The *local* factor rewards specialisation (a user followed
//! exclusively on `t`), the *global* factor rewards popularity on `t`
//! (log-smoothed so that "very specialised accounts with few followers
//! and very popular but generalist accounts" score similarly). Both
//! factors are 0 when nobody follows `u` on `t`.
//!
//! `|Γu|` and `|Γu(t)|` are local per-node counts; only the per-topic
//! maximum needs a full pass, and the paper notes it can be stored and
//! refreshed periodically. [`AuthorityIndex`] materialises all of it in
//! one pass over the in-CSR.

use fui_graph::{NodeColumns, NodeId, SocialGraph};
use fui_taxonomy::{Topic, NUM_TOPICS};

/// Dense authority index: one score per (node, topic), stored as
/// [`NodeColumns`] structure-of-arrays arenas (stride [`NUM_TOPICS`]).
#[derive(Clone, Debug)]
pub struct AuthorityIndex {
    /// `auth(v, t)` columns.
    auth: NodeColumns<f64>,
    /// `|Γv(t)|` columns, same layout.
    followers_on: NodeColumns<u32>,
    /// `max_v |Γv(t)|` per topic.
    max_followers_on: [u32; NUM_TOPICS],
}

/// Node-range granularity of the parallel build passes. Small graphs
/// fit in one chunk and run inline on the caller's thread; large ones
/// fan out over the `fui_exec` pool. Either way every row is computed
/// from its node's local counts alone, so the result is bit-identical
/// at any thread count.
const BUILD_CHUNK: usize = 2048;

impl AuthorityIndex {
    /// Builds the index — `O(N·T + E·|labels|)` total, with the
    /// per-node passes (follower counting, the per-topic
    /// max-normalization scan, authority derivation) chunked over the
    /// [`fui_exec`] pool. Each chunk owns a disjoint node range and
    /// chunk results are merged in range order, so the index matches
    /// the serial build exactly whatever `FUI_THREADS` says.
    pub fn build(graph: &SocialGraph) -> AuthorityIndex {
        let n = graph.num_nodes();
        // Pass 1: per-node follower counts per topic, and each chunk's
        // contribution to the per-topic maxima (max is order-free, but
        // we still fold chunk maxima in range order).
        let chunks: Vec<(Vec<u32>, [u32; NUM_TOPICS])> =
            fui_exec::par_ranges(n, BUILD_CHUNK, |r| {
                let mut followers = vec![0u32; r.len() * NUM_TOPICS];
                let mut maxima = [0u32; NUM_TOPICS];
                for v in r.clone() {
                    let base = (v - r.start) * NUM_TOPICS;
                    for e in graph.in_edges(NodeId(v as u32)) {
                        for t in e.labels.iter() {
                            followers[base + t.index()] += 1;
                        }
                    }
                    for t in 0..NUM_TOPICS {
                        maxima[t] = maxima[t].max(followers[base + t]);
                    }
                }
                (followers, maxima)
            });
        let mut followers_on = Vec::with_capacity(n * NUM_TOPICS);
        let mut max_followers_on = [0u32; NUM_TOPICS];
        for (chunk, maxima) in chunks {
            followers_on.extend_from_slice(&chunk);
            for t in 0..NUM_TOPICS {
                max_followers_on[t] = max_followers_on[t].max(maxima[t]);
            }
        }
        // Pass 2: authority rows against the global maxima; rows are
        // independent, chunks concatenate in range order.
        let followers_ref = &followers_on;
        let auth_chunks: Vec<Vec<f64>> = fui_exec::par_ranges(n, BUILD_CHUNK, |r| {
            let mut auth = vec![0.0f64; r.len() * NUM_TOPICS];
            for v in r.clone() {
                let total = graph.in_degree(NodeId(v as u32));
                if total == 0 {
                    continue;
                }
                let base = (v - r.start) * NUM_TOPICS;
                for t in 0..NUM_TOPICS {
                    let on_t = followers_ref[v * NUM_TOPICS + t];
                    if on_t == 0 {
                        continue;
                    }
                    let local = f64::from(on_t) / total as f64;
                    let global = f64::from(1 + on_t).ln() / f64::from(1 + max_followers_on[t]).ln();
                    auth[base + t] = local * global;
                }
            }
            auth
        });
        let mut auth = Vec::with_capacity(n * NUM_TOPICS);
        for chunk in auth_chunks {
            auth.extend_from_slice(&chunk);
        }
        AuthorityIndex {
            auth: NodeColumns::from_vec(auth, NUM_TOPICS),
            followers_on: NodeColumns::from_vec(followers_on, NUM_TOPICS),
            max_followers_on,
        }
    }

    /// `auth(v, t)`.
    #[inline]
    pub fn auth(&self, v: NodeId, t: Topic) -> f64 {
        self.auth.at(v, t.index())
    }

    /// The full per-topic authority row of `v` (indexed by topic).
    #[inline]
    pub fn auth_row(&self, v: NodeId) -> &[f64] {
        self.auth.row(v)
    }

    /// `|Γv(t)|` — followers of `v` interested in `t`.
    #[inline]
    pub fn followers_on(&self, v: NodeId, t: Topic) -> u32 {
        self.followers_on.at(v, t.index())
    }

    /// `max_v |Γv(t)|` — the per-topic global maximum.
    #[inline]
    pub fn max_followers_on(&self, t: Topic) -> u32 {
        self.max_followers_on[t.index()]
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.auth.num_nodes()
    }

    /// Bytes held by the score and count arenas.
    pub fn size_bytes(&self) -> usize {
        self.auth.size_bytes() + self.followers_on.size_bytes()
    }

    /// Borrows the raw arenas for serialisation: the `auth` column
    /// slice, the `followers_on` column slice and the per-topic maxima.
    pub fn to_parts(&self) -> (&[f64], &[u32], &[u32; NUM_TOPICS]) {
        (
            self.auth.as_slice(),
            self.followers_on.as_slice(),
            &self.max_followers_on,
        )
    }

    /// Reassembles an index from raw arenas (the inverse of
    /// [`Self::to_parts`], used by the durable snapshot codec).
    ///
    /// # Panics
    /// Panics if either slice length is not a multiple of
    /// [`NUM_TOPICS`] or the two arenas disagree on the node count —
    /// callers are expected to have length-validated their input.
    pub fn from_parts(
        auth: Vec<f64>,
        followers_on: Vec<u32>,
        max_followers_on: [u32; NUM_TOPICS],
    ) -> AuthorityIndex {
        assert_eq!(
            auth.len(),
            followers_on.len(),
            "authority arenas disagree on node count"
        );
        AuthorityIndex {
            auth: NodeColumns::from_vec(auth, NUM_TOPICS),
            followers_on: NodeColumns::from_vec(followers_on, NUM_TOPICS),
            max_followers_on,
        }
    }

    /// Applies one follow/unfollow incrementally — the paper's point
    /// that "`|Γu|` and `|Γu(t)|` can be computed on local information
    /// of each user, without graph exploration": only the followee's
    /// row is touched. The per-topic global maxima are *not* lowered
    /// on unfollows (that would need a scan); like the paper, treat
    /// them as a periodically refreshed denominator —
    /// [`refresh_maxima`](Self::refresh_maxima) is the periodic pass.
    ///
    /// `total_followers_after` is the followee's in-degree after the
    /// change (the graph owns that count; passing it keeps this index
    /// graph-free).
    pub fn apply_edge_change(
        &mut self,
        followee: NodeId,
        labels: fui_taxonomy::TopicSet,
        added: bool,
        total_followers_after: usize,
    ) {
        let frow = self.followers_on.row_mut(followee);
        for t in labels.iter() {
            let slot = &mut frow[t.index()];
            if added {
                *slot += 1;
                self.max_followers_on[t.index()] = self.max_followers_on[t.index()].max(*slot);
            } else {
                *slot = slot.saturating_sub(1);
            }
        }
        // Recompute the followee's authority row from the counts.
        for t in 0..NUM_TOPICS {
            let on_t = self.followers_on.at(followee, t);
            self.auth.row_mut(followee)[t] = if on_t == 0 || total_followers_after == 0 {
                0.0
            } else {
                let local = f64::from(on_t) / total_followers_after as f64;
                let global =
                    f64::from(1 + on_t).ln() / f64::from(1 + self.max_followers_on[t]).ln();
                local * global
            };
        }
        // An unfollow also changes every *other* topic's local factor
        // of this followee (the |Γu| denominator moved) — the loop
        // above already re-derived all 18 entries, so nothing else to
        // do.
    }

    /// Recomputes the per-topic maxima from the stored counts (the
    /// paper's "stored and re-computed periodically" denominator) and
    /// re-derives every authority row against them. `in_degrees[v]`
    /// must hold each node's current follower count.
    pub fn refresh_maxima(&mut self, in_degrees: &[usize]) {
        assert_eq!(in_degrees.len(), self.num_nodes(), "one in-degree per node");
        let n = self.num_nodes();
        let followers = self.followers_on.as_slice();
        let chunk_maxima: Vec<[u32; NUM_TOPICS]> = fui_exec::par_ranges(n, BUILD_CHUNK, |r| {
            let mut m = [0u32; NUM_TOPICS];
            for v in r {
                for t in 0..NUM_TOPICS {
                    m[t] = m[t].max(followers[v * NUM_TOPICS + t]);
                }
            }
            m
        });
        self.max_followers_on = [0; NUM_TOPICS];
        for m in chunk_maxima {
            for (t, &chunk_max) in m.iter().enumerate() {
                self.max_followers_on[t] = self.max_followers_on[t].max(chunk_max);
            }
        }
        for (v, &in_deg) in in_degrees.iter().enumerate() {
            let v_id = NodeId(v as u32);
            for t in 0..NUM_TOPICS {
                let on_t = self.followers_on.at(v_id, t);
                self.auth.row_mut(v_id)[t] = if on_t == 0 || in_deg == 0 {
                    0.0
                } else {
                    let local = f64::from(on_t) / in_deg as f64;
                    let global =
                        f64::from(1 + on_t).ln() / f64::from(1 + self.max_followers_on[t]).ln();
                    local * global
                };
            }
        }
    }

    /// The `k` highest-authority nodes on `t`, best first.
    pub fn top_authorities(&self, t: Topic, k: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = (0..self.num_nodes())
            .map(|i| {
                let id = NodeId(i as u32);
                (id, self.auth.at(id, t.index()))
            })
            .filter(|&(_, a)| a > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("authority is not NaN"));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};
    use fui_taxonomy::Topic;

    /// The Example-1 graph shape: B followed on {tech, tech, bigdata→
    /// business}, C followed on {tech, tech, business×4}. We map the
    /// paper's "bigdata" to business.
    fn example1() -> (SocialGraph, NodeId, NodeId) {
        let mut g = GraphBuilder::new();
        let b = g.add_node(TopicSet::empty());
        let c = g.add_node(TopicSet::empty());
        let tech = TopicSet::single(Topic::Technology);
        let busi = TopicSet::single(Topic::Business);
        // B: 3 followers -> 2 on technology, 1 on business.
        for _ in 0..2 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, b, tech);
        }
        let f = g.add_node(TopicSet::empty());
        g.add_edge(f, b, busi);
        // C: 6 followers -> 2 on technology, 4 on business.
        for _ in 0..2 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, c, tech);
        }
        for _ in 0..4 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, c, busi);
        }
        (g.build(), b, c)
    }

    #[test]
    fn example_one_of_the_paper() {
        let (g, b, c) = example1();
        let idx = AuthorityIndex::build(&g);
        // Same global popularity on technology (2 each), but B is more
        // specialised: auth(B, tech) > auth(C, tech).
        assert_eq!(idx.followers_on(b, Topic::Technology), 2);
        assert_eq!(idx.followers_on(c, Topic::Technology), 2);
        assert!(idx.auth(b, Topic::Technology) > idx.auth(c, Topic::Technology));
        // Exact local values: 2/3 vs 2/6, global = 1 for both.
        assert!((idx.auth(b, Topic::Technology) - 2.0 / 3.0).abs() < 1e-12);
        assert!((idx.auth(c, Topic::Technology) - 2.0 / 6.0).abs() < 1e-12);
        // On business C is more followed (4 vs 1): global factor wins.
        assert!(idx.auth(c, Topic::Business) > idx.auth(b, Topic::Business));
    }

    #[test]
    fn zero_when_unfollowed_on_topic() {
        let (g, b, _) = example1();
        let idx = AuthorityIndex::build(&g);
        assert_eq!(idx.auth(b, Topic::Sports), 0.0);
        assert_eq!(idx.followers_on(b, Topic::Sports), 0);
        // Followers themselves have no followers at all.
        assert_eq!(idx.auth(NodeId(2), Topic::Technology), 0.0);
    }

    #[test]
    fn exclusive_and_most_followed_scores_one() {
        // Single account followed only on social, and it is the global
        // max: local = global = 1.
        let mut g = GraphBuilder::new();
        let star = g.add_node(TopicSet::empty());
        for _ in 0..5 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, star, TopicSet::single(Topic::Social));
        }
        let idx = AuthorityIndex::build(&g.build());
        assert!((idx.auth(star, Topic::Social) - 1.0).abs() < 1e-12);
        assert_eq!(idx.max_followers_on(Topic::Social), 5);
    }

    #[test]
    fn authority_in_unit_interval() {
        let (g, _, _) = example1();
        let idx = AuthorityIndex::build(&g);
        for v in g.nodes() {
            for t in Topic::ALL {
                let a = idx.auth(v, t);
                assert!((0.0..=1.0).contains(&a), "auth({v},{t}) = {a}");
            }
        }
    }

    #[test]
    fn multi_label_edges_count_once_per_topic() {
        let mut g = GraphBuilder::new();
        let v = g.add_node(TopicSet::empty());
        let f = g.add_node(TopicSet::empty());
        g.add_edge(
            f,
            v,
            TopicSet::single(Topic::Technology).with(Topic::Business),
        );
        let idx = AuthorityIndex::build(&g.build());
        assert_eq!(idx.followers_on(v, Topic::Technology), 1);
        assert_eq!(idx.followers_on(v, Topic::Business), 1);
        // local = 1/1 for both topics, global = 1 (it is the max).
        assert!((idx.auth(v, Topic::Technology) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_follow_matches_rebuild() {
        let (g, b, _) = example1();
        let mut idx = AuthorityIndex::build(&g);
        // A new account follows B on sports.
        let g2 = {
            let mut builder = GraphBuilder::with_capacity(g.num_nodes() + 1, g.num_edges() + 1);
            for u in g.nodes() {
                builder.add_node(g.node_labels(u));
            }
            let newbie = builder.add_node(TopicSet::empty());
            for (u, v, l) in g.edges() {
                builder.add_edge(u, v, l);
            }
            builder.add_edge(newbie, b, TopicSet::single(Topic::Sports));
            builder.build()
        };
        idx.apply_edge_change(b, TopicSet::single(Topic::Sports), true, g2.in_degree(b));
        let fresh = AuthorityIndex::build(&g2);
        for t in Topic::ALL {
            assert!(
                (idx.auth(b, t) - fresh.auth(b, t)).abs() < 1e-12,
                "topic {t}: incremental {} vs rebuild {}",
                idx.auth(b, t),
                fresh.auth(b, t)
            );
        }
    }

    #[test]
    fn incremental_unfollow_then_refresh_matches_rebuild() {
        let (g, b, c) = example1();
        let mut idx = AuthorityIndex::build(&g);
        // B loses his business follower (node 4 in construction order).
        let follower = g
            .in_edges(b)
            .find(|e| e.labels.contains(Topic::Business))
            .map(|e| e.node)
            .unwrap();
        let g2 = g.without_edges(&[(follower, b)]);
        idx.apply_edge_change(b, TopicSet::single(Topic::Business), false, g2.in_degree(b));
        // The stale max may overstate the denominator; the periodic
        // refresh fixes it exactly.
        let in_degrees: Vec<usize> = g2.nodes().map(|v| g2.in_degree(v)).collect();
        idx.refresh_maxima(&in_degrees);
        let fresh = AuthorityIndex::build(&g2);
        for v in g2.nodes() {
            for t in Topic::ALL {
                assert!(
                    (idx.auth(v, t) - fresh.auth(v, t)).abs() < 1e-12,
                    "node {v} topic {t}"
                );
            }
        }
        // c untouched by the whole affair.
        assert_eq!(idx.followers_on(c, Topic::Business), 4);
    }

    #[test]
    fn chunked_build_matches_serial_reference() {
        // A graph wider than BUILD_CHUNK so the build really crosses
        // chunk boundaries; the chunked passes must reproduce the
        // straightforward serial derivation bit-for-bit.
        let n = BUILD_CHUNK * 2 + 137;
        let mut g = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(TopicSet::empty())).collect();
        for i in 0..n {
            let label = Topic::ALL[i % Topic::ALL.len()];
            g.add_edge(nodes[i], nodes[(i * 7 + 13) % n], TopicSet::single(label));
            if i % 3 == 0 {
                g.add_edge(nodes[i], nodes[(i + n / 2) % n], TopicSet::single(label));
            }
        }
        let g = g.build();
        let idx = AuthorityIndex::build(&g);
        // Serial reference, computed the textbook way.
        let mut followers = vec![0u32; n * NUM_TOPICS];
        for v in g.nodes() {
            for e in g.in_edges(v) {
                for t in e.labels.iter() {
                    followers[v.index() * NUM_TOPICS + t.index()] += 1;
                }
            }
        }
        let mut maxima = [0u32; NUM_TOPICS];
        for v in 0..n {
            for t in 0..NUM_TOPICS {
                maxima[t] = maxima[t].max(followers[v * NUM_TOPICS + t]);
            }
        }
        for t in Topic::ALL {
            assert_eq!(idx.max_followers_on(t), maxima[t.index()]);
        }
        for v in g.nodes() {
            for t in Topic::ALL {
                let on_t = followers[v.index() * NUM_TOPICS + t.index()];
                assert_eq!(idx.followers_on(v, t), on_t);
                let expect = if on_t == 0 || g.in_degree(v) == 0 {
                    0.0
                } else {
                    (f64::from(on_t) / g.in_degree(v) as f64)
                        * (f64::from(1 + on_t).ln() / f64::from(1 + maxima[t.index()]).ln())
                };
                assert_eq!(
                    idx.auth(v, t).to_bits(),
                    expect.to_bits(),
                    "node {v} topic {t}"
                );
            }
        }
    }

    #[test]
    fn top_authorities_sorted() {
        let (g, b, c) = example1();
        let idx = AuthorityIndex::build(&g);
        let top = idx.top_authorities(Topic::Technology, 5);
        assert_eq!(top[0].0, b);
        assert_eq!(top[1].0, c);
        assert_eq!(top.len(), 2);
    }
}
