//! Bounded partial top-k selection over `(node, score)` pairs.
//!
//! Every ranked readout in the workspace — exact recommendation,
//! landmark preprocessing lists, landmark query merges — ends with
//! "keep the `n` best of `m` scored nodes, highest score first, ties
//! by node id". Sorting all `m` candidates costs `O(m log m)`; for the
//! landmark preprocessing (`m` = whole reached set, `n` = stored list
//! size) and high-fan-out queries, `m ≫ n`. The selector here keeps a
//! bounded min-heap of the current best `n` and finishes with one
//! `O(n log n)` sort, for `O(m log n)` total — and, because the
//! ordering (score descending, node id ascending) is **total** over
//! distinct nodes, its output is element-for-element identical to the
//! full sort-then-truncate it replaces.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fui_graph::NodeId;

/// A candidate in the selection ordering: "greater" means *better* —
/// higher score, or equal score and smaller node id.
#[derive(Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    node: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .expect("scores are not NaN")
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the top-`n` pairs by score (highest first, ties broken by
/// ascending node id) without sorting the full candidate set.
///
/// Exactly equivalent to sorting `items` by `(score desc, id asc)` and
/// truncating to `n`. Panics if any score is NaN (scores in this
/// workspace are sums of products of finite non-negative factors).
pub fn select_top_k(
    n: usize,
    items: impl IntoIterator<Item = (NodeId, f64)>,
) -> Vec<(NodeId, f64)> {
    if n == 0 {
        return Vec::new();
    }
    let mut iter = items.into_iter().map(|(node, score)| Entry {
        score,
        node: node.0,
    });
    // Buffer the first `n` candidates with no ordering work at all:
    // when `m <= n` (landmark lists routinely store more than the
    // reached set holds) this degenerates to plain sort-and-return,
    // never paying for heap maintenance.
    let mut buf: Vec<Entry> = Vec::new();
    let mut overflow = None;
    for e in &mut iter {
        if buf.len() < n {
            buf.push(e);
        } else {
            overflow = Some(e);
            break;
        }
    }
    let mut kept: Vec<Entry> = if let Some(first) = overflow {
        // Min-heap of the best `n` so far, built with one O(n)
        // heapify (Reverse flips the ordering so the *worst kept*
        // candidate is at the top, ready to be evicted).
        let mut heap: BinaryHeap<std::cmp::Reverse<Entry>> =
            buf.into_iter().map(std::cmp::Reverse).collect();
        for e in std::iter::once(first).chain(iter) {
            if e > heap.peek().expect("n > 0").0 {
                heap.pop();
                heap.push(std::cmp::Reverse(e));
            }
        }
        heap.into_iter().map(|r| r.0).collect()
    } else {
        buf
    };
    kept.sort_unstable_by(|a, b| b.cmp(a));
    kept.into_iter()
        .map(|e| (NodeId(e.node), e.score))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sort(mut v: Vec<(NodeId, f64)>, n: usize) -> Vec<(NodeId, f64)> {
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are not NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        v.truncate(n);
        v
    }

    #[test]
    fn matches_full_sort_on_seeded_inputs() {
        // Deterministic LCG inputs with plenty of score ties.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for m in [0usize, 1, 2, 7, 50, 333] {
            let items: Vec<(NodeId, f64)> = (0..m)
                .map(|i| {
                    // Coarse quantisation forces tie groups.
                    let s = (next() % 17) as f64 / 4.0;
                    (NodeId(i as u32), s)
                })
                .collect();
            for n in [0usize, 1, 2, 5, m / 2, m, m + 10, usize::MAX] {
                let a = select_top_k(n, items.iter().copied());
                let b = full_sort(items.clone(), n);
                assert_eq!(a, b, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn orders_ties_by_node_id() {
        let items = vec![
            (NodeId(9), 1.0),
            (NodeId(3), 1.0),
            (NodeId(7), 2.0),
            (NodeId(1), 1.0),
        ];
        let top = select_top_k(3, items);
        assert_eq!(
            top,
            vec![(NodeId(7), 2.0), (NodeId(1), 1.0), (NodeId(3), 1.0)]
        );
    }

    #[test]
    fn zero_k_is_empty() {
        assert!(select_top_k(0, vec![(NodeId(1), 5.0)]).is_empty());
    }
}
