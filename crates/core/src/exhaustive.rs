//! Brute-force walk enumeration — the test oracle.
//!
//! Enumerates every walk of bounded length out of a source node and
//! sums Definition 1 directly. Exponential; only for small graphs in
//! tests (exported so downstream crates' property tests can reuse it).

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{SimMatrix, Topic};

use crate::authority::AuthorityIndex;
use crate::params::{ScoreParams, ScoreVariant};
use crate::relevance::walk_edge_contribution;

/// Exact scores of every node computed by walk enumeration up to
/// `max_len` edges.
#[derive(Clone, Debug)]
pub struct ExhaustiveScores {
    /// `σ(source, v, t)` per node.
    pub sigma: Vec<f64>,
    /// `topo_β(source, v)` per node (empty walk included at source).
    pub topo_beta: Vec<f64>,
    /// `topo_αβ(source, v)` per node.
    pub topo_alphabeta: Vec<f64>,
}

/// Reusable DFS scratch of the enumerator — the walk stack, kept warm
/// across sources in batched oracle runs.
#[derive(Clone, Debug, Default)]
pub struct EnumScratch {
    stack: Vec<(NodeId, u32, f64)>,
}

impl EnumScratch {
    /// An empty scratch; the stack grows to the deepest walk explored.
    pub fn new() -> EnumScratch {
        EnumScratch::default()
    }
}

/// Enumerates all walks from `source` of length `1..=max_len` and sums
/// their Definition-1 contributions per end node.
#[allow(clippy::too_many_arguments)]
pub fn enumerate(
    graph: &SocialGraph,
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    source: NodeId,
    t: Topic,
    variant: ScoreVariant,
    max_len: u32,
) -> ExhaustiveScores {
    let mut scratch = EnumScratch::new();
    enumerate_into(
        &mut scratch,
        graph,
        sim,
        authority,
        params,
        source,
        t,
        variant,
        max_len,
    )
}

/// [`enumerate`] with a caller-owned [`EnumScratch`]. The per-node
/// score vectors are the function's output and are still allocated, but
/// the DFS stack — the only other allocation, and the hot one on deep
/// enumerations — is reused. Results are identical to [`enumerate`].
#[allow(clippy::too_many_arguments)]
pub fn enumerate_into(
    scratch: &mut EnumScratch,
    graph: &SocialGraph,
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    source: NodeId,
    t: Topic,
    variant: ScoreVariant,
    max_len: u32,
) -> ExhaustiveScores {
    let n = graph.num_nodes();
    let mut out = ExhaustiveScores {
        sigma: vec![0.0; n],
        topo_beta: vec![0.0; n],
        topo_alphabeta: vec![0.0; n],
    };
    out.topo_beta[source.index()] = 1.0; // empty walk
    out.topo_alphabeta[source.index()] = 1.0;
    // DFS over walks carrying (current node, length, running topical
    // sum Σ α^d·sim·auth).
    let stack = &mut scratch.stack;
    stack.clear();
    stack.push((source, 0, 0.0));
    while let Some((u, len, topical)) = stack.pop() {
        if len == max_len {
            continue;
        }
        for e in graph.out_edges(u) {
            let d = len + 1;
            let contribution =
                walk_edge_contribution(sim, authority, params, e.labels, e.node, t, d, variant);
            let new_topical = topical + contribution;
            let weight_b = params.beta.powi(d as i32);
            let weight_ab = (params.alpha * params.beta).powi(d as i32);
            out.sigma[e.node.index()] += weight_b * new_topical;
            out.topo_beta[e.node.index()] += weight_b;
            out.topo_alphabeta[e.node.index()] += weight_ab;
            stack.push((e.node, d, new_topical));
        }
    }
    out
}

/// [`enumerate`] for a batch of sources, fanned out one source per
/// task over the [`fui_exec`] pool — the oracle-side counterpart of
/// the engine's batched queries. Each source's enumeration is fully
/// independent, so `out[i]` is bit-identical to
/// `enumerate(.., sources[i], ..)` at every `FUI_THREADS`. The DFS
/// scratch is pooled per worker (`fui_exec::WorkerLocal`), not
/// allocated per source.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_many(
    graph: &SocialGraph,
    sim: &SimMatrix,
    authority: &AuthorityIndex,
    params: &ScoreParams,
    sources: &[NodeId],
    t: Topic,
    variant: ScoreVariant,
    max_len: u32,
) -> Vec<ExhaustiveScores> {
    let scratch: fui_exec::WorkerLocal<EnumScratch> = fui_exec::WorkerLocal::new();
    fui_exec::par_map(sources, |&s| {
        let mut sc = scratch.get_or(EnumScratch::new);
        enumerate_into(
            &mut sc, graph, sim, authority, params, s, t, variant, max_len,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{PropagateOpts, Propagator};
    use fui_graph::{GraphBuilder, TopicSet};

    /// Oracle vs. engine on a graph with cycles and multi-labels.
    fn messy_graph() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node(TopicSet::empty())).collect();
        let tech = TopicSet::single(Topic::Technology);
        let multi = TopicSet::single(Topic::Health).with(Topic::Sports);
        let soc = TopicSet::single(Topic::Social);
        b.add_edge(n[0], n[1], tech);
        b.add_edge(n[0], n[2], multi);
        b.add_edge(n[1], n[2], soc);
        b.add_edge(n[2], n[3], tech);
        b.add_edge(n[3], n[0], multi); // cycle back
        b.add_edge(n[3], n[4], soc);
        b.add_edge(n[2], n[4], tech);
        b.build()
    }

    #[test]
    fn engine_matches_oracle_at_fixed_depth() {
        let g = messy_graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams {
            alpha: 0.8,
            beta: 0.25,
            tolerance: 1e-15,
            max_depth: 50,
        };
        for variant in [
            ScoreVariant::Full,
            ScoreVariant::NoAuthority,
            ScoreVariant::NoSimilarity,
        ] {
            let p = Propagator::new(&g, &idx, &sim, params, variant);
            for depth in 1..=5u32 {
                for t in [Topic::Technology, Topic::Social, Topic::Entertainment] {
                    let oracle = enumerate(&g, &sim, &idx, &params, NodeId(0), t, variant, depth);
                    let r = p.propagate(
                        NodeId(0),
                        &[t],
                        PropagateOpts {
                            max_depth: Some(depth),
                            ..Default::default()
                        },
                    );
                    for v in g.nodes() {
                        assert!(
                            (oracle.sigma[v.index()] - r.sigma(v, t)).abs() < 1e-12,
                            "{variant:?} depth {depth} topic {t} node {v}: \
                             oracle {} vs engine {}",
                            oracle.sigma[v.index()],
                            r.sigma(v, t)
                        );
                        assert!(
                            (oracle.topo_beta[v.index()] - r.topo_beta(v)).abs() < 1e-12,
                            "topo mismatch at {v}"
                        );
                        assert!(
                            (oracle.topo_alphabeta[v.index()] - r.topo_alphabeta(v)).abs() < 1e-12,
                            "topo_ab mismatch at {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_oracle_equals_per_source_oracle() {
        let g = messy_graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams::default();
        let sources: Vec<NodeId> = g.nodes().collect();
        let batched = enumerate_many(
            &g,
            &sim,
            &idx,
            &params,
            &sources,
            Topic::Technology,
            ScoreVariant::Full,
            4,
        );
        assert_eq!(batched.len(), sources.len());
        for (out, &s) in batched.iter().zip(&sources) {
            let serial = enumerate(
                &g,
                &sim,
                &idx,
                &params,
                s,
                Topic::Technology,
                ScoreVariant::Full,
                4,
            );
            for v in g.nodes() {
                assert_eq!(
                    out.sigma[v.index()].to_bits(),
                    serial.sigma[v.index()].to_bits(),
                    "source {s} node {v}"
                );
                assert_eq!(
                    out.topo_beta[v.index()].to_bits(),
                    serial.topo_beta[v.index()].to_bits()
                );
            }
        }
    }

    #[test]
    fn converged_engine_close_to_deep_oracle() {
        let g = messy_graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        // Small beta: walks beyond length ~8 contribute < 1e-8.
        let params = ScoreParams {
            alpha: 0.85,
            beta: 0.1,
            tolerance: 1e-14,
            max_depth: 60,
        };
        let p = Propagator::new(&g, &idx, &sim, params, ScoreVariant::Full);
        let r = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        assert!(r.converged);
        let oracle = enumerate(
            &g,
            &sim,
            &idx,
            &params,
            NodeId(0),
            Topic::Technology,
            ScoreVariant::Full,
            12,
        );
        for v in g.nodes() {
            assert!(
                (oracle.sigma[v.index()] - r.sigma(v, Topic::Technology)).abs() < 1e-9,
                "node {v}"
            );
        }
    }
}
