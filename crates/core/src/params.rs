//! Score parameters and ablation variants.

use fui_graph::{spectral, SocialGraph};

/// Decay factors and iteration controls of the Tr score.
///
/// The paper sets `β = 0.0005` and `α = 0.85` "similarly to the values
/// used for the Katz and the TwitterRank algorithms" (Section 5.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreParams {
    /// Edge decay `α ∈ [0, 1]`: discounts edges far from the query
    /// node (Equation 3).
    pub alpha: f64,
    /// Path decay `β ∈ [0, 1]`: favours short paths (Equation 1).
    /// Must satisfy `β < 1/σ_max(A)` for convergence (Proposition 3).
    pub beta: f64,
    /// Relative tolerance of the iterative computation: iteration
    /// stops when a level's new mass falls below `tolerance` times the
    /// accumulated mass.
    pub tolerance: f64,
    /// Hard cap on the number of propagation levels.
    pub max_depth: u32,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            alpha: 0.85,
            beta: 0.0005,
            tolerance: 1e-9,
            max_depth: 30,
        }
    }
}

/// Why a parameter set was rejected by [`ScoreParams::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParamError {
    /// `alpha` outside `[0, 1]`.
    BadAlpha(f64),
    /// `beta` outside `[0, 1]`.
    BadBeta(f64),
    /// `beta` violates the Proposition 3 convergence bound for this
    /// graph; the payload is the estimated bound `1/σ_max(A)`.
    BetaAboveSpectralBound {
        /// The offending β.
        beta: f64,
        /// The estimated convergence bound.
        bound: f64,
    },
    /// Tolerance not a small positive number.
    BadTolerance(f64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::BadAlpha(a) => write!(f, "alpha {a} outside [0, 1]"),
            ParamError::BadBeta(b) => write!(f, "beta {b} outside [0, 1]"),
            ParamError::BetaAboveSpectralBound { beta, bound } => write!(
                f,
                "beta {beta} >= convergence bound 1/sigma_max = {bound} (Proposition 3)"
            ),
            ParamError::BadTolerance(t) => write!(f, "tolerance {t} must be in (0, 1)"),
        }
    }
}

impl std::error::Error for ParamError {}

impl ScoreParams {
    /// Paper defaults (`β = 0.0005`, `α = 0.85`).
    pub fn paper() -> ScoreParams {
        ScoreParams::default()
    }

    /// Range-checks the parameters without a graph.
    pub fn check_ranges(&self) -> Result<(), ParamError> {
        if !(0.0..=1.0).contains(&self.alpha) || !self.alpha.is_finite() {
            return Err(ParamError::BadAlpha(self.alpha));
        }
        if !(0.0..=1.0).contains(&self.beta) || !self.beta.is_finite() {
            return Err(ParamError::BadBeta(self.beta));
        }
        if !(self.tolerance > 0.0 && self.tolerance < 1.0) {
            return Err(ParamError::BadTolerance(self.tolerance));
        }
        Ok(())
    }

    /// Full validation including the Proposition 3 spectral bound
    /// `β < 1/σ_max(A)` on the given graph.
    pub fn validate(&self, graph: &SocialGraph) -> Result<(), ParamError> {
        self.check_ranges()?;
        let radius = spectral::spectral_radius(graph, 50);
        if radius > 0.0 {
            let bound = 1.0 / radius;
            if self.beta >= bound {
                return Err(ParamError::BetaAboveSpectralBound {
                    beta: self.beta,
                    bound,
                });
            }
        }
        Ok(())
    }
}

/// Score variants: the full Tr score and the ablations compared in
/// Figure 4 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScoreVariant {
    /// The full score: topology × edge similarity × authority.
    Full,
    /// `Tr−auth`: drop the authority factor (Katz + edge similarity).
    NoAuthority,
    /// `Tr−sim`: drop the edge-similarity factor (Katz + authority).
    NoSimilarity,
    /// Pure topology — the Katz baseline `topo_β` (Equation 2).
    TopoOnly,
}

impl ScoreVariant {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ScoreVariant::Full => "Tr",
            ScoreVariant::NoAuthority => "Tr-auth",
            ScoreVariant::NoSimilarity => "Tr-sim",
            ScoreVariant::TopoOnly => "Katz",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    #[test]
    fn defaults_match_paper() {
        let p = ScoreParams::paper();
        assert_eq!(p.beta, 0.0005);
        assert_eq!(p.alpha, 0.85);
        p.check_ranges().unwrap();
    }

    #[test]
    fn range_checks() {
        let bad_alpha = ScoreParams {
            alpha: 1.5,
            ..ScoreParams::default()
        };
        assert!(matches!(
            bad_alpha.check_ranges(),
            Err(ParamError::BadAlpha(_))
        ));
        let bad_beta = ScoreParams {
            beta: -0.1,
            ..ScoreParams::default()
        };
        assert!(matches!(
            bad_beta.check_ranges(),
            Err(ParamError::BadBeta(_))
        ));
        let bad_tol = ScoreParams {
            tolerance: 0.0,
            ..ScoreParams::default()
        };
        assert!(matches!(
            bad_tol.check_ranges(),
            Err(ParamError::BadTolerance(_))
        ));
    }

    #[test]
    fn spectral_bound_enforced() {
        // A 4-clique has sigma_max = 3, bound 1/3.
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        for &i in &nodes {
            for &j in &nodes {
                if i != j {
                    b.add_edge(i, j, TopicSet::empty());
                }
            }
        }
        let g = b.build();
        let ok = ScoreParams {
            beta: 0.3,
            ..ScoreParams::default()
        };
        ok.validate(&g).unwrap();
        let bad = ScoreParams {
            beta: 0.5,
            ..ScoreParams::default()
        };
        assert!(matches!(
            bad.validate(&g),
            Err(ParamError::BetaAboveSpectralBound { .. })
        ));
    }

    #[test]
    fn variant_names() {
        assert_eq!(ScoreVariant::Full.name(), "Tr");
        assert_eq!(ScoreVariant::TopoOnly.name(), "Katz");
        assert_eq!(ScoreVariant::NoAuthority.name(), "Tr-auth");
        assert_eq!(ScoreVariant::NoSimilarity.name(), "Tr-sim");
    }
}
