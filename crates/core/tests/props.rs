//! Property tests pinning the propagation engine to Definition 1:
//! on random small graphs, the frontier engine must equal brute-force
//! walk enumeration for every variant, topic and depth; the
//! composition law (Prop. 2) must hold on random walks (DESIGN.md §7).

use fui_core::{
    exhaustive, path, AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant,
};
use fui_graph::{GraphBuilder, NodeId, SocialGraph, TopicSet};
use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0u32..(1 << NUM_TOPICS));
        proptest::collection::vec(edge, 1..30).prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(TopicSet::empty());
            }
            for (u, v, mask) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), TopicSet::from_mask(mask | 1));
                }
            }
            b.build()
        })
    })
}

fn arb_params() -> impl Strategy<Value = ScoreParams> {
    (0.1f64..1.0, 0.05f64..0.35).prop_map(|(alpha, beta)| ScoreParams {
        alpha,
        beta,
        tolerance: 1e-14,
        max_depth: 64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_equals_walk_enumeration(
        g in arb_graph(),
        params in arb_params(),
        topic_idx in 0..NUM_TOPICS,
        depth in 1u32..5,
    ) {
        let t = Topic::from_index(topic_idx);
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        for variant in [
            ScoreVariant::Full,
            ScoreVariant::NoAuthority,
            ScoreVariant::NoSimilarity,
        ] {
            let engine = Propagator::new(&g, &auth, &sim, params, variant);
            let r = engine.propagate(
                NodeId(0),
                &[t],
                PropagateOpts { max_depth: Some(depth), ..Default::default() },
            );
            let oracle =
                exhaustive::enumerate(&g, &sim, &auth, &params, NodeId(0), t, variant, depth);
            for v in g.nodes() {
                prop_assert!(
                    (oracle.sigma[v.index()] - r.sigma(v, t)).abs() < 1e-10,
                    "{variant:?} sigma mismatch at {v}: {} vs {}",
                    oracle.sigma[v.index()], r.sigma(v, t)
                );
                prop_assert!(
                    (oracle.topo_beta[v.index()] - r.topo_beta(v)).abs() < 1e-10,
                    "topo mismatch at {v}"
                );
            }
        }
    }

    #[test]
    fn sigma_is_monotone_in_depth(
        g in arb_graph(),
        params in arb_params(),
        topic_idx in 0..NUM_TOPICS,
    ) {
        // Walk masses are non-negative, so deeper scores dominate.
        let t = Topic::from_index(topic_idx);
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let engine = Propagator::new(&g, &auth, &sim, params, ScoreVariant::Full);
        let shallow = engine.propagate(
            NodeId(0), &[t],
            PropagateOpts { max_depth: Some(2), ..Default::default() },
        );
        let deep = engine.propagate(
            NodeId(0), &[t],
            PropagateOpts { max_depth: Some(4), ..Default::default() },
        );
        for v in g.nodes() {
            prop_assert!(deep.sigma(v, t) + 1e-12 >= shallow.sigma(v, t));
            prop_assert!(deep.topo_beta(v) + 1e-12 >= shallow.topo_beta(v));
        }
    }

    #[test]
    fn composition_law_on_random_walks(
        g in arb_graph(),
        params in arb_params(),
        topic_idx in 0..NUM_TOPICS,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let t = Topic::from_index(topic_idx);
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        // Random walk of length 2..6 from node 0, if one exists.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut walk = vec![NodeId(0)];
        for _ in 0..5 {
            let u = *walk.last().unwrap();
            let succs = g.followees(u);
            if succs.is_empty() {
                break;
            }
            walk.push(succs[rng.gen_range(0..succs.len())]);
        }
        prop_assume!(walk.len() >= 3);
        let len = walk.len() - 1;
        let full = path::walk_score(&g, &sim, &auth, &params, &walk, t, ScoreVariant::Full);
        for split in 1..len {
            let s1 = path::walk_score(&g, &sim, &auth, &params, &walk[..=split], t, ScoreVariant::Full);
            let s2 = path::walk_score(&g, &sim, &auth, &params, &walk[split..], t, ScoreVariant::Full);
            let composed = path::compose(&params, s1, split, s2, len - split);
            prop_assert!(
                (full - composed).abs() <= 1e-12 * full.abs().max(1.0),
                "split {split}: {full} vs {composed}"
            );
        }
    }

    #[test]
    fn pruned_scores_never_exceed_unpruned(
        g in arb_graph(),
        params in arb_params(),
        mask_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let engine = Propagator::new(&g, &auth, &sim, params, ScoreVariant::Full);
        let mut rng = rand::rngs::StdRng::seed_from_u64(mask_seed);
        let mask: Vec<bool> = (0..g.num_nodes()).map(|_| rng.gen::<f64>() < 0.3).collect();
        let t = Topic::Technology;
        let full = engine.propagate(NodeId(0), &[t], PropagateOpts::default());
        let pruned = engine.propagate(
            NodeId(0),
            &[t],
            PropagateOpts { prune: Some(&mask), ..Default::default() },
        );
        for v in g.nodes() {
            prop_assert!(pruned.sigma(v, t) <= full.sigma(v, t) + 1e-12);
            prop_assert!(pruned.topo_beta(v) <= full.topo_beta(v) + 1e-12);
        }
    }

    #[test]
    fn authority_is_in_unit_interval_and_zero_without_followers(g in arb_graph()) {
        let auth = AuthorityIndex::build(&g);
        for v in g.nodes() {
            for t in Topic::ALL {
                let a = auth.auth(v, t);
                prop_assert!((0.0..=1.0).contains(&a));
                if auth.followers_on(v, t) == 0 {
                    prop_assert_eq!(a, 0.0);
                }
            }
        }
    }
}
