//! Differential + bounded-memory pins on the streaming CSR ingestion
//! path, in their own test binary because the counting allocator below
//! is process-global: a single sequential test function keeps the
//! measurements unpolluted by concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use fui_datagen::{generate_batch, generate_streaming, StreamConfig};

/// System allocator wrapped with live-bytes, peak-bytes and
/// allocation-count accounting.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let old = layout.size();
            let live = if new_size >= old {
                LIVE.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old)
            } else {
                LIVE.fetch_sub(old - new_size, Ordering::Relaxed) - (old - new_size)
            };
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns (peak bytes above the starting live set,
/// allocation count).
fn measured<T>(f: impl FnOnce() -> T) -> (T, usize, u64) {
    let live_before = LIVE.load(Ordering::Relaxed);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed) - live_before;
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    (out, peak, allocs)
}

#[test]
fn streaming_path_is_byte_identical_and_memory_bounded() {
    // Mid-size seeded instance: big enough that an O(E) intermediate
    // edge list would dominate the footprint, small enough for CI.
    let cfg = StreamConfig {
        nodes: 40_000,
        avg_out_degree: 16.0,
        seed: 0xD1FF_5EED,
        ..StreamConfig::default()
    };

    // Differential pin: the streaming CSR path and the batch builder
    // path must produce byte-identical graphs — every offset, target,
    // interned label id and table entry (SocialGraph's PartialEq spans
    // all arenas).
    let (streamed, stream_peak, stream_allocs) = measured(|| generate_streaming(&cfg));
    let (batch, batch_peak, _) = measured(|| generate_batch(&cfg));
    assert_eq!(
        streamed.graph, batch,
        "streaming and batch construction diverged for seed {:#x}",
        cfg.seed
    );
    assert!(
        streamed.graph.num_edges() > 400_000,
        "instance too small to pin memory"
    );

    // Bounded memory: the streaming path's peak is the finished graph
    // plus O(N) scratch — nowhere near an extra O(E) edge list. The
    // batch path, which does hold one, must peak strictly higher.
    let final_bytes = streamed.graph.size_bytes();
    let scratch_budget = cfg.nodes * 96 + (1 << 20);
    assert!(
        stream_peak < final_bytes + final_bytes / 2 + scratch_budget,
        "streaming peak {stream_peak} B vs graph {final_bytes} B: \
         an O(E) intermediate is back"
    );
    assert!(
        stream_peak < batch_peak,
        "streaming peak {stream_peak} B should undercut the \
         edge-list batch path's {batch_peak} B"
    );

    // Allocation count stays O(log E) pre-sized vec growth, never
    // per-edge or per-node boxing.
    assert!(
        stream_allocs < 1_000,
        "streaming generator performed {stream_allocs} allocations \
         for {} edges — a per-edge/per-node allocation crept in",
        streamed.graph.num_edges()
    );
}
