//! Independent re-derivation of the authority normalizer, with
//! deliberate mutations — the harness's teeth.
//!
//! A differential oracle is only trustworthy if it *would* catch a
//! bug. This module re-derives the Section 3.2 authority score
//!
//! ```text
//! auth(u, t) = |Γu(t)| / |Γu| · log(1 + |Γu(t)|) / log(1 + max_v |Γv(t)|)
//! ```
//!
//! straight from the in-edges, and can inject a classic off-by-one
//! into that copy ([`Mutation`]). [`check_authority`] compares the
//! copy against the production [`AuthorityIndex`]; the conformance
//! suite asserts the unmutated copy agrees everywhere **and** that
//! every mutation is caught on every instance that has any authority
//! mass at all — a mutation surviving would mean the oracle is blind
//! to exactly the class of bug it exists to catch.

use fui_core::AuthorityIndex;
use fui_graph::SocialGraph;
use fui_taxonomy::{Topic, NUM_TOPICS};

/// A deliberate bug injected into the reference normalizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful re-derivation; must match the production index.
    None,
    /// `log(2 + max)` instead of `log(1 + max)` in the global
    /// denominator — deflates every non-zero score.
    GlobalDenominatorOffByOne,
    /// `|Γu(t)| + 1` in the local numerator — inflates specialisation.
    LocalNumeratorOffByOne,
    /// Drops the per-topic maximum of the last node — wrong whenever
    /// the last node holds a topic's maximum.
    MaxScanSkipsLastNode,
}

impl Mutation {
    /// The injectable bugs (everything but [`Mutation::None`]).
    pub const BUGS: [Mutation; 3] = [
        Mutation::GlobalDenominatorOffByOne,
        Mutation::LocalNumeratorOffByOne,
        Mutation::MaxScanSkipsLastNode,
    ];
}

/// Re-derives the full authority table (`out[v * NUM_TOPICS + t]`),
/// optionally with a [`Mutation`] applied.
pub fn reference_authority(graph: &SocialGraph, mutation: Mutation) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut followers = vec![0u32; n * NUM_TOPICS];
    for v in graph.nodes() {
        for e in graph.in_edges(v) {
            for t in e.labels.iter() {
                followers[v.index() * NUM_TOPICS + t.index()] += 1;
            }
        }
    }
    let max_scan_end = if mutation == Mutation::MaxScanSkipsLastNode {
        n.saturating_sub(1)
    } else {
        n
    };
    let mut maxima = [0u32; NUM_TOPICS];
    for v in 0..max_scan_end {
        for t in 0..NUM_TOPICS {
            maxima[t] = maxima[t].max(followers[v * NUM_TOPICS + t]);
        }
    }
    let mut auth = vec![0.0f64; n * NUM_TOPICS];
    for v in graph.nodes() {
        let total = graph.in_degree(v);
        if total == 0 {
            continue;
        }
        for t in 0..NUM_TOPICS {
            let on_t = followers[v.index() * NUM_TOPICS + t];
            if on_t == 0 {
                continue;
            }
            let local_numerator = match mutation {
                Mutation::LocalNumeratorOffByOne => on_t + 1,
                _ => on_t,
            };
            let global_base = match mutation {
                Mutation::GlobalDenominatorOffByOne => 2 + maxima[t],
                _ => 1 + maxima[t],
            };
            let local = f64::from(local_numerator) / total as f64;
            let global = f64::from(1 + on_t).ln() / f64::from(global_base).ln();
            auth[v.index() * NUM_TOPICS + t] = local * global;
        }
    }
    auth
}

/// Compares the (possibly mutated) reference table against the
/// production [`AuthorityIndex`]; `Err` carries the first divergence.
pub fn check_authority(graph: &SocialGraph, mutation: Mutation) -> Result<(), String> {
    let index = AuthorityIndex::build(graph);
    let reference = reference_authority(graph, mutation);
    for v in graph.nodes() {
        for t in Topic::ALL {
            let got = index.auth(v, t);
            let expect = reference[v.index() * NUM_TOPICS + t.index()];
            if (got - expect).abs() > 1e-12 {
                return Err(format!(
                    "authority mismatch at node {v} topic {t}: \
                     index={got} reference({mutation:?})={expect}"
                ));
            }
        }
    }
    Ok(())
}

/// Whether the graph has any authority mass at all — a mutation can
/// only be observable where some score is non-zero.
pub fn has_authority_mass(graph: &SocialGraph) -> bool {
    let index = AuthorityIndex::build(graph);
    graph
        .nodes()
        .any(|v| Topic::ALL.iter().any(|&t| index.auth(v, t) > 0.0))
}

/// The mutation sanity check: the faithful copy must agree and every
/// observable injected bug must be caught.
pub fn check_mutations_are_caught(graph: &SocialGraph) -> Result<(), String> {
    check_authority(graph, Mutation::None)
        .map_err(|e| format!("faithful reference diverges from the index: {e}"))?;
    if !has_authority_mass(graph) {
        return Ok(()); // nothing any mutation could perturb
    }
    for bug in Mutation::BUGS {
        if !mutation_is_observable(graph, bug) {
            continue;
        }
        if check_authority(graph, bug).is_ok() {
            return Err(format!(
                "oracle is blind: injected {bug:?} but the comparison still \
                 passed"
            ));
        }
    }
    Ok(())
}

/// Whether `bug` actually changes the reference table on this graph
/// (e.g. [`Mutation::MaxScanSkipsLastNode`] is a no-op when the last
/// node holds no per-topic maximum).
fn mutation_is_observable(graph: &SocialGraph, bug: Mutation) -> bool {
    let clean = reference_authority(graph, Mutation::None);
    let mutated = reference_authority(graph, bug);
    clean
        .iter()
        .zip(&mutated)
        .any(|(a, b)| (a - b).abs() > 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Preset};
    use fui_graph::{GraphBuilder, NodeId};
    use fui_taxonomy::TopicSet;

    #[test]
    fn faithful_copy_matches_on_all_presets() {
        for preset in Preset::ALL {
            for seed in 0..16u64 {
                let g = corpus::generate(preset, seed).graph();
                check_authority(&g, Mutation::None)
                    .unwrap_or_else(|e| panic!("{preset:?}/{seed}: {e}"));
            }
        }
    }

    #[test]
    fn global_off_by_one_is_always_caught_with_mass() {
        // log(2+max) != log(1+max) for every max >= 1, so any non-zero
        // score moves.
        for preset in Preset::ALL {
            for seed in 0..16u64 {
                let g = corpus::generate(preset, seed).graph();
                if !has_authority_mass(&g) {
                    continue;
                }
                assert!(
                    check_authority(&g, Mutation::GlobalDenominatorOffByOne).is_err(),
                    "{preset:?}/{seed}: global off-by-one slipped through"
                );
            }
        }
    }

    #[test]
    fn mutation_harness_has_teeth() {
        for preset in Preset::ALL {
            for seed in 0..8u64 {
                let g = corpus::generate(preset, seed).graph();
                check_mutations_are_caught(&g).unwrap_or_else(|e| panic!("{preset:?}/{seed}: {e}"));
            }
        }
    }

    #[test]
    fn max_scan_mutation_observable_when_last_node_is_the_max() {
        // Node 2 (the last) is the unique technology maximum.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        let tech = TopicSet::single(Topic::Technology);
        b.add_edge(n[0], n[2], tech);
        b.add_edge(n[1], n[2], tech);
        b.add_edge(n[0], n[1], tech);
        let g = b.build();
        assert!(mutation_is_observable(&g, Mutation::MaxScanSkipsLastNode));
        assert!(check_authority(&g, Mutation::MaxScanSkipsLastNode).is_err());
    }
}
