//! Per-case seed logging through `fui-obs` run manifests.
//!
//! The conformance suite derives every case seed from one **run seed**
//! ([`crate::rng::derive_seed`]), records each `(preset, seed,
//! outcome)` here, and writes a `BENCH_<suite>.json` manifest before
//! asserting — so a red CI run ships the exact seeds needed to replay
//! it locally:
//!
//! ```text
//! FUI_TESTKIT_SEED=0x... cargo test --test conformance
//! ```

use std::path::{Path, PathBuf};

use fui_obs::RunManifest;

use crate::gen::GraphCase;

/// Environment variable overriding the suite's run seed (decimal or
/// `0x`-prefixed hex).
pub const SEED_ENV: &str = "FUI_TESTKIT_SEED";

/// The run seed: `FUI_TESTKIT_SEED` if set and parseable, otherwise
/// `default`.
pub fn run_seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// Outcome of one conformance case.
#[derive(Clone, Debug)]
pub struct CaseRecord {
    /// Preset name the case came from.
    pub preset: &'static str,
    /// The derived case seed.
    pub seed: u64,
    /// The failure message, if the case failed.
    pub error: Option<String>,
}

/// Accumulates case outcomes and renders them as a run manifest.
#[derive(Clone, Debug)]
pub struct SeedLog {
    suite: String,
    run_seed: u64,
    cases: Vec<CaseRecord>,
}

impl SeedLog {
    /// A log for the named suite under the given run seed.
    pub fn new(suite: impl Into<String>, run_seed: u64) -> SeedLog {
        SeedLog {
            suite: suite.into(),
            run_seed,
            cases: Vec::new(),
        }
    }

    /// The run seed all case seeds derive from.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// Records one case outcome.
    pub fn record(&mut self, case: &GraphCase, result: &Result<(), String>) {
        self.cases.push(CaseRecord {
            preset: case.preset,
            seed: case.seed,
            error: result.as_ref().err().cloned(),
        });
        let outcome = if result.is_ok() { "pass" } else { "FAIL" };
        fui_obs::counter(&format!("testkit.case.{outcome}")).incr();
    }

    /// Number of cases recorded.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// The failing records.
    pub fn failures(&self) -> Vec<&CaseRecord> {
        self.cases.iter().filter(|c| c.error.is_some()).collect()
    }

    /// One-line replay keys of every failing case
    /// (`preset:0x<case-seed>`).
    pub fn failing_keys(&self) -> String {
        self.failures()
            .iter()
            .map(|c| format!("{}:{:#018x}", c.preset, c.seed))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Writes the `BENCH_<suite>.json` manifest into `dir` (counters
    /// and gauges of the current `fui-obs` registry ride along) and
    /// returns the path written.
    pub fn write_manifest(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let failures = self.failures();
        let mut m = RunManifest::new(self.suite.clone())
            .param_str("run_seed", format!("{:#018x}", self.run_seed))
            .param_str("seed_env", SEED_ENV)
            .param_int("cases", self.cases.len() as i64)
            .param_int("failures", failures.len() as i64);
        if !failures.is_empty() {
            m = m.param_str("failing_cases", self.failing_keys());
            // The first failure's message is usually the minimized
            // repro; later ones repeat the same divergence.
            if let Some(first) = failures[0].error.as_deref() {
                m = m.param_str("first_error", first);
            }
        }
        m.write(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Preset};

    #[test]
    fn log_records_and_renders() {
        let mut log = SeedLog::new("testkit-unit", 7);
        let ok = corpus::generate(Preset::Star, 1);
        let bad = corpus::generate(Preset::Chain, 2);
        log.record(&ok, &Ok(()));
        log.record(&bad, &Err("sigma mismatch".to_owned()));
        assert_eq!(log.len(), 2);
        assert_eq!(log.failures().len(), 1);
        assert!(log.failing_keys().starts_with("chain:0x"));

        let dir = std::env::temp_dir().join("fui-testkit-seedlog-test");
        let path = log.write_manifest(&dir).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"run_seed\""));
        assert!(json.contains("\"failures\": 1"));
        assert!(json.contains("sigma mismatch"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn env_seed_parsing() {
        // No env mutation (tests run in parallel); exercise the parser
        // through the default path only.
        assert_eq!(run_seed_from_env(42), 42);
    }
}
