//! The differential oracle.
//!
//! Three independent computations of `σ(u, v, t)` are pinned against
//! each other on every generated instance:
//!
//! 1. **exhaustive** — [`fui_core::exhaustive::enumerate`] sums
//!    Definition 1 over every walk explicitly;
//! 2. **propagate** — the level-synchronous engine of Proposition 1;
//! 3. **landmark** — the Proposition 4 composition served by
//!    [`fui_landmarks::ApproxRecommender`].
//!
//! # Exact-cover landmark placement
//!
//! On an acyclic instance whose query node `u` has in-degree zero
//! (every corpus DAG preset guarantees this for node 0), choosing
//! **every out-neighbour of `u`** as a landmark makes the composition
//! *provably exact*, not just a lower bound:
//!
//! * every walk out of `u` starts with an edge `u → λ` into some
//!   landmark, so each walk decomposes **uniquely** at its first edge
//!   into the one-edge prefix and a walk from `λ`;
//! * per walk, the Definition-1 contribution factors exactly as
//!   `σ(u,λ,t)·topo_β(λ,v) + topo_αβ(u,λ)·σ(λ,v,t)` — the two terms
//!   the query-time composition sums from the stored lists;
//! * the query's pruned exploration contributes exactly the one-edge
//!   prefix scores (all depth-1 frontier nodes are landmarks, so
//!   nothing deeper is double-counted);
//! * no walk revisits a landmark (the graph is acyclic) and no stored
//!   list is truncated (the index is built with `top_n ≥ num_nodes`),
//!   so nothing is missed either.
//!
//! Cyclic instances cannot get this guarantee (walks may re-enter a
//! landmark, whose own `σ(λ,λ,t)` mass is not in any stored list);
//! they are covered by the fixed-depth exhaustive-vs-propagate check
//! plus the paper's lower-bound property `σ̃ ≤ σ` (Section 4.2).
//!
//! Every check returns `Err(message)` instead of panicking so the
//! conformance suite can shrink failing instances with
//! [`crate::gen::minimize`].

use fui_core::exhaustive::{self, ExhaustiveScores};
use fui_core::{AuthorityIndex, PropagateOpts, Propagation, Propagator, ScoreVariant};
use fui_graph::NodeId;
use fui_landmarks::{ApproxRecommender, LandmarkIndex};
use fui_taxonomy::{SimMatrix, Topic};

use crate::corpus::{self, Preset};
use crate::gen::{self, GraphCase};
use crate::rng::SeededRng;

/// Absolute score tolerance of all differential comparisons.
pub const TOLERANCE: f64 = 1e-9;

/// Topics every case is checked on: three drawn from the case's RNG
/// plus a fixed one so empty-similarity paths are exercised too.
fn query_topics(rng: &mut SeededRng) -> Vec<Topic> {
    let mut topics = vec![
        gen::gen_topic(rng),
        gen::gen_topic(rng),
        gen::gen_topic(rng),
        Topic::Technology,
    ];
    topics.sort();
    topics.dedup();
    topics
}

fn variant_for(rng: &mut SeededRng) -> ScoreVariant {
    *rng.pick(&[
        ScoreVariant::Full,
        ScoreVariant::NoAuthority,
        ScoreVariant::NoSimilarity,
    ])
}

/// Fixed-depth differential check: exhaustive enumeration and the
/// propagation engine must agree on `σ`, `topo_β` and `topo_αβ` for
/// every node, topic and depth `1..=4` — on **any** instance, cyclic
/// or not, because both sides truncate at the same walk length.
pub fn check_fixed_depth(case: &GraphCase) -> Result<(), String> {
    let graph = case.graph();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let mut rng = SeededRng::new(case.seed);
    let params = gen::gen_params_fixed_depth(&mut rng);
    let variant = variant_for(&mut rng);
    let topics = query_topics(&mut rng);
    let source = NodeId(rng.below(graph.num_nodes() as u64) as u32);
    let p = Propagator::new(&graph, &auth, &sim, params, variant);
    for depth in 1..=4u32 {
        let r = p.propagate(
            source,
            &topics,
            PropagateOpts {
                max_depth: Some(depth),
                ..Default::default()
            },
        );
        for &t in &topics {
            let oracle =
                exhaustive::enumerate(&graph, &sim, &auth, &params, source, t, variant, depth);
            compare_scores(case, &oracle, &r, t, &format!("depth {depth} {variant:?}"))?;
        }
    }
    Ok(())
}

fn compare_scores(
    case: &GraphCase,
    oracle: &ExhaustiveScores,
    engine: &Propagation,
    t: Topic,
    ctx: &str,
) -> Result<(), String> {
    for v in 0..case.num_nodes {
        let node = NodeId(v as u32);
        let pairs = [
            ("sigma", oracle.sigma[v], engine.sigma(node, t)),
            ("topo_beta", oracle.topo_beta[v], engine.topo_beta(node)),
            (
                "topo_alphabeta",
                oracle.topo_alphabeta[v],
                engine.topo_alphabeta(node),
            ),
        ];
        for (what, expect, got) in pairs {
            if (expect - got).abs() > TOLERANCE {
                return Err(format!(
                    "{ctx} topic {t} node {node}: {what} exhaustive={expect} \
                     propagate={got} ({})",
                    case.repro()
                ));
            }
        }
    }
    Ok(())
}

/// The full three-way check on an acyclic instance: exhaustive,
/// propagate-to-convergence and the exact-cover landmark query must
/// agree within [`TOLERANCE`], including identical top-k orderings.
pub fn check_three_way(case: &GraphCase) -> Result<(), String> {
    if !case.acyclic {
        return Err(format!(
            "three-way check requires an acyclic case ({})",
            case.repro()
        ));
    }
    let graph = case.graph();
    let n = graph.num_nodes();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let mut rng = SeededRng::new(case.seed.rotate_left(17));
    let params = gen::gen_params_dag(&mut rng);
    let topics = query_topics(&mut rng);
    let source = NodeId(0);
    let p = Propagator::new(&graph, &auth, &sim, params, ScoreVariant::Full);

    // Leg 1 vs leg 2: every walk in a DAG has fewer than n edges, so
    // enumeration at max_len = n is the complete Definition-1 sum, and
    // the converged propagation must equal it exactly.
    let exact = p.propagate(source, &topics, PropagateOpts::default());
    if !exact.converged {
        return Err(format!(
            "propagation failed to converge on a DAG ({})",
            case.repro()
        ));
    }
    for &t in &topics {
        let oracle = exhaustive::enumerate(
            &graph,
            &sim,
            &auth,
            &params,
            source,
            t,
            ScoreVariant::Full,
            n as u32,
        );
        compare_scores(case, &oracle, &exact, t, "converged")?;
    }

    // Leg 3: exact-cover landmarks — every out-neighbour of the
    // source, stored lists long enough to never truncate.
    let landmarks: Vec<NodeId> = graph.followees(source).to_vec();
    let index = LandmarkIndex::build(&p, landmarks, n);
    let approx = ApproxRecommender::new(&p, &index);
    for (ti, &t) in topics.iter().enumerate() {
        let result = approx.recommend(source, t, n);
        let score_of = |node: NodeId| {
            result
                .recommendations
                .iter()
                .find(|&&(v, _)| v == node)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        for v in graph.nodes() {
            if v == source {
                continue;
            }
            let e = exact.sigma(v, t);
            let a = score_of(v);
            if (e - a).abs() > TOLERANCE {
                return Err(format!(
                    "landmark composition diverges: topic {t} node {v} \
                     exact={e} landmark={a} ({})",
                    case.repro()
                ));
            }
        }
        compare_rankings(case, &exact.top_n_sigma(ti, n), &result.recommendations, t)?;
    }
    Ok(())
}

/// Compares two top-k lists: same length, same candidate set, and the
/// scores at each rank within [`TOLERANCE`] of each other — so an
/// ordering may only differ where scores are floating-point
/// indistinguishable.
fn compare_rankings(
    case: &GraphCase,
    exact: &[(NodeId, f64)],
    approx: &[(NodeId, f64)],
    t: Topic,
) -> Result<(), String> {
    if exact.len() != approx.len() {
        return Err(format!(
            "top-k length mismatch on {t}: exact {} vs landmark {} ({})",
            exact.len(),
            approx.len(),
            case.repro()
        ));
    }
    let mut a: Vec<u32> = exact.iter().map(|&(v, _)| v.0).collect();
    let mut b: Vec<u32> = approx.iter().map(|&(v, _)| v.0).collect();
    a.sort_unstable();
    b.sort_unstable();
    if a != b {
        return Err(format!(
            "top-k candidate sets differ on {t}: {a:?} vs {b:?} ({})",
            case.repro()
        ));
    }
    for (rank, (&(ve, se), &(va, sa))) in exact.iter().zip(approx).enumerate() {
        if (se - sa).abs() > TOLERANCE {
            return Err(format!(
                "top-k rank {rank} on {t}: exact ({ve}, {se}) vs landmark \
                 ({va}, {sa}) ({})",
                case.repro()
            ));
        }
    }
    Ok(())
}

/// Lower-bound check for cyclic instances: with `β` under the
/// Proposition 3 spectral bound, every landmark-composed score must
/// stay at or below the converged exact score (Section 4.2's
/// guarantee) — and the direct part of the exploration stays within
/// [`TOLERANCE`] of exactness trivially because it *is* the engine.
pub fn check_lower_bound(case: &GraphCase) -> Result<(), String> {
    let graph = case.graph();
    let n = graph.num_nodes();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let mut rng = SeededRng::new(case.seed.rotate_left(33));
    let params = gen::gen_params_converging(&mut rng, &graph);
    params
        .check_ranges()
        .map_err(|e| format!("bad converging params: {e} ({})", case.repro()))?;
    let topics = query_topics(&mut rng);
    let source = NodeId(rng.below(n as u64) as u32);
    let p = Propagator::new(&graph, &auth, &sim, params, ScoreVariant::Full);
    let exact = p.propagate(source, &topics, PropagateOpts::default());
    if !exact.converged {
        return Err(format!(
            "propagation did not converge under the spectral bound ({})",
            case.repro()
        ));
    }
    // A handful of seeded landmarks (possibly including dead ends).
    let mut landmarks: Vec<NodeId> = (0..3)
        .map(|_| NodeId(rng.below(n as u64) as u32))
        .filter(|&l| l != source)
        .collect();
    landmarks.sort_unstable();
    landmarks.dedup();
    let index = LandmarkIndex::build(&p, landmarks, n);
    let approx = ApproxRecommender::new(&p, &index);
    for &t in &topics {
        let result = approx.recommend(source, t, n);
        for &(v, s) in &result.recommendations {
            let e = exact.sigma(v, t);
            if s > e + TOLERANCE {
                return Err(format!(
                    "approximation exceeds exact score: topic {t} node {v} \
                     landmark={s} exact={e} ({})",
                    case.repro()
                ));
            }
        }
    }
    Ok(())
}

/// Runs every oracle check that applies to one `(preset, seed)` pair —
/// the unit of work of the conformance suite.
pub fn conformance_case(preset: Preset, seed: u64) -> Result<(), String> {
    let case = corpus::generate(preset, seed);
    run_case_checks(&case)
}

/// [`conformance_case`] on an already-generated (possibly shrunk)
/// case.
pub fn run_case_checks(case: &GraphCase) -> Result<(), String> {
    check_fixed_depth(case)?;
    if case.acyclic {
        check_three_way(case)
    } else {
        check_lower_bound(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_passes_a_seed_sweep() {
        for preset in Preset::ALL {
            for seed in 0..8u64 {
                conformance_case(preset, seed).unwrap_or_else(|e| panic!("{preset:?}/{seed}: {e}"));
            }
        }
    }

    #[test]
    fn three_way_rejects_cyclic_cases() {
        let case = corpus::generate(Preset::Random, 3);
        assert!(!case.acyclic);
        assert!(check_three_way(&case).is_err());
    }

    #[test]
    fn ranking_comparison_flags_wrong_sets() {
        let case = corpus::generate(Preset::Star, 1);
        let a = vec![(NodeId(1), 0.5), (NodeId(2), 0.25)];
        let b = vec![(NodeId(1), 0.5), (NodeId(3), 0.25)];
        assert!(compare_rankings(&case, &a, &b, Topic::Technology).is_err());
        let c = vec![(NodeId(1), 0.5), (NodeId(2), 0.2)];
        assert!(compare_rankings(&case, &a, &c, Topic::Technology).is_err());
        assert!(compare_rankings(&case, &a, &a.clone(), Topic::Technology).is_ok());
    }
}
