//! Deterministic byte-corruption helpers for decoder robustness tests.
//!
//! Everything here is pure data surgery — no RNG state beyond the
//! caller's [`crate::SeededRng`] — so a failing corruption is
//! reproducible from the seed alone. The landmark snapshot fuzz tests
//! drive these against [`fui_landmarks::persist::decode`], which must
//! answer every corrupted input with an `Err`, never a panic or an
//! attacker-sized allocation.

use crate::rng::SeededRng;

/// `max_cuts` truncation points of `data`, evenly spaced and always
/// including the empty prefix and the one-byte-short prefix (the two
/// classic decoder killers).
pub fn truncations(data: &[u8], max_cuts: usize) -> Vec<Vec<u8>> {
    let mut cuts: Vec<usize> = vec![0];
    if data.len() > 1 {
        cuts.push(data.len() - 1);
    }
    let step = (data.len() / max_cuts.max(1)).max(1);
    cuts.extend((step..data.len()).step_by(step));
    cuts.sort_unstable();
    cuts.dedup();
    cuts.into_iter().map(|c| data[..c].to_vec()).collect()
}

/// `data` with bit `bit` flipped (`bit` counts from the start,
/// little-endian within each byte).
pub fn flip_bit(data: &[u8], bit: usize) -> Vec<u8> {
    let mut out = data.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// `count` seeded single-bit corruptions of `data`.
pub fn bit_flips(data: &[u8], rng: &mut SeededRng, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| flip_bit(data, rng.below(data.len() as u64 * 8) as usize))
        .collect()
}

/// `data` with the 8 bytes at `offset` overwritten by `v`
/// (little-endian) — the tool for planting absurd length/count fields.
pub fn splice_u64(data: &[u8], offset: usize, v: u64) -> Vec<u8> {
    let mut out = data.to_vec();
    out[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    out
}

/// `data` with the 4 bytes at `offset` overwritten by `v`
/// (little-endian).
pub fn splice_u32(data: &[u8], offset: usize, v: u32) -> Vec<u8> {
    let mut out = data.to_vec();
    out[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncations_cover_the_edges() {
        let data = [7u8; 100];
        let cuts = truncations(&data, 10);
        assert!(cuts.iter().any(|c| c.is_empty()));
        assert!(cuts.iter().any(|c| c.len() == 99));
        assert!(cuts.iter().all(|c| c.len() < data.len()));
        assert!(cuts.len() >= 10);
    }

    #[test]
    fn flip_bit_round_trips() {
        let data = [0u8, 0xFF, 0x5A];
        for bit in 0..data.len() * 8 {
            let once = flip_bit(&data, bit);
            assert_ne!(once, data);
            assert_eq!(flip_bit(&once, bit), data);
        }
    }

    #[test]
    fn splices_write_little_endian() {
        let data = [0u8; 16];
        let out = splice_u64(&data, 4, 0x0102_0304_0506_0708);
        assert_eq!(out[4], 0x08);
        assert_eq!(out[11], 0x01);
        let out = splice_u32(&data, 0, 0xAABB_CCDD);
        assert_eq!(out[0], 0xDD);
        assert_eq!(out[3], 0xAA);
    }
}
