//! Crash/chaos recovery invariant for the durable serving layer.
//!
//! Durability is only real when a seeded kill/restart provably returns
//! bit-identical answers. [`check_crash_recovery_matches_twin`] drives
//! two durable [`Service`]s through the same seeded op script — an
//! interleaving of queries, follow/unfollow records, snapshot rotations
//! and landmark refreshes:
//!
//! * the **twin** runs the whole script uninterrupted;
//! * the **victim** is killed (dropped) at a seeded op index, its
//!   on-disk state optionally mangled the way a crash would mangle it
//!   (the newest snapshot torn mid-write, or a partial record appended
//!   to the journal tail), warm-restarted via [`Service::restore`],
//!   and then driven through the remainder of the script.
//!
//! Every post-recovery reply must be **bit-identical** to the twin's
//! (scores compared by `f64::to_bits`; the `cached` flag is excluded —
//! a restarted process legitimately starts cold), and the two must
//! agree exactly on the final epoch, graph generation and journal
//! position. The module also exports corrupt-snapshot fixture builders
//! for the warm-start fallback corpus (stale generation, slot-count
//! mismatch) — each splices a field and re-fixes the file checksum, so
//! decoding exercises the *semantic* rejection, not the checksum.

use std::path::{Path, PathBuf};

use fui_graph::{NodeId, PartitionStrategy};
use fui_landmarks::EdgeChange;
use fui_service::durable;
use fui_service::{Reply, Request, Service, ServiceConfig, ShardSpec, ShardedService};
use fui_taxonomy::{SimMatrix, Topic};

use crate::gen::{gen_topicset, GraphCase};
use crate::rng::SeededRng;

/// Ops per chaos script (kill point is drawn from the interior).
const OPS_PER_CASE: usize = 24;

/// Service configuration the chaos cases run under — aggressive
/// staleness threshold and tiny caches, mirroring the serving-layer
/// conformance invariant, so rotations and refreshes actually bite on
/// ≤12-node corpus instances.
pub fn chaos_cfg() -> ServiceConfig {
    ServiceConfig {
        max_batch: 4,
        queue_capacity: 8,
        cache_capacity: 64,
        cache_shards: 4,
        refresh_threshold: 0.02,
        ..ServiceConfig::default()
    }
}

/// One step of a chaos script.
#[derive(Clone, Copy, Debug)]
enum Op {
    Query(Request),
    Change(EdgeChange),
    Rotate,
    Refresh,
}

/// Draws a deterministic op script for `case`.
fn gen_ops(case: &GraphCase, rng: &mut SeededRng) -> Vec<Op> {
    let n = case.num_nodes as u64;
    let mut ops = Vec::with_capacity(OPS_PER_CASE);
    for _ in 0..OPS_PER_CASE {
        ops.push(match rng.below(10) {
            0..=4 => Op::Query(Request {
                user: NodeId(rng.below(n) as u32),
                topic: Topic::ALL[rng.below(Topic::ALL.len() as u64) as usize],
                top_n: 1 + rng.below(5) as usize,
            }),
            5 | 6 => {
                let follower = rng.below(n) as u32;
                let followee = (follower + 1 + rng.below(n - 1) as u32) % n as u32;
                let labels = gen_topicset(rng);
                Op::Change(if rng.chance(0.7) {
                    EdgeChange::insert(NodeId(follower), NodeId(followee), labels)
                } else {
                    EdgeChange::remove(NodeId(follower), NodeId(followee), labels)
                })
            }
            7 | 8 => Op::Rotate,
            _ => Op::Refresh,
        });
    }
    ops
}

/// Bit-level digest of a reply, `cached` flag excluded (a restarted
/// service legitimately answers the same bits from a cold cache).
fn fingerprint(reply: &Reply) -> Vec<u64> {
    match reply {
        Reply::Result(s) => {
            let mut v = vec![s.epoch, s.recommendations.len() as u64];
            for &(node, score) in s.recommendations.iter() {
                v.push(u64::from(node.0));
                v.push(score.to_bits());
            }
            v
        }
        Reply::Overloaded => vec![u64::MAX],
        Reply::Rejected(_) => vec![u64::MAX - 1],
    }
}

/// Applies one op; returns the reply fingerprint for queries.
fn apply_op(svc: &Service, op: &Op) -> Option<Vec<u64>> {
    match op {
        Op::Query(req) => Some(fingerprint(&svc.call(*req))),
        Op::Change(c) => {
            svc.record(*c).expect("script changes are valid");
            None
        }
        Op::Rotate => {
            svc.rotate();
            None
        }
        Op::Refresh => {
            svc.refresh();
            None
        }
    }
}

/// A fresh durable service over `case` rooted at `dir`, under
/// [`chaos_cfg`] — every third node a landmark, exhaustive-friendly
/// fixed-depth score parameters.
pub fn durable_service(case: &GraphCase, dir: &Path) -> Service {
    let graph = case.graph();
    let n = graph.num_nodes();
    let landmarks: Vec<NodeId> = graph.nodes().step_by(3).collect();
    Service::with_durability(
        graph,
        SimMatrix::opencalais(),
        fui_core::ScoreParams {
            alpha: 0.8,
            beta: 0.25,
            tolerance: 1e-300,
            max_depth: 64,
        },
        fui_core::ScoreVariant::Full,
        landmarks,
        n,
        chaos_cfg(),
        dir,
    )
    .expect("durable service build")
}

/// A unique scratch directory for one chaos role.
fn scratch_dir(case: &GraphCase, role: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fui-chaos-{}-{}-{:#x}-{role}",
        std::process::id(),
        case.preset,
        case.seed
    ))
}

/// How the victim's on-disk state is mangled after the kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mangle {
    /// Clean kill between ops — disk exactly as the service left it.
    None,
    /// The newest snapshot file is truncated at a seeded offset,
    /// simulating a crash mid-snapshot-write; warm start must fall
    /// back to the next-newest valid snapshot and replay further.
    TornSnapshot,
    /// A partial record is appended to the journal, simulating a crash
    /// mid-append; warm start must drop the (never-acknowledged) tail.
    TornJournal,
}

/// The chaos invariant. See the module docs.
pub fn check_crash_recovery_matches_twin(case: &GraphCase) -> Result<(), String> {
    if case.num_nodes < 2 {
        // The op script needs a non-self edge to record; the corpus
        // never draws 1-node cases but the minimizer can reach them.
        return Ok(());
    }
    let mut rng = SeededRng::new(case.seed.rotate_left(37));
    let ops = gen_ops(case, &mut rng);
    let kill_op = 1 + rng.below((ops.len() - 2) as u64) as usize;
    let mangle = match rng.below(3) {
        0 => Mangle::None,
        1 => Mangle::TornSnapshot,
        _ => Mangle::TornJournal,
    };
    let mangle_roll = rng.u64();

    let twin_dir = scratch_dir(case, "twin");
    let victim_dir = scratch_dir(case, "victim");
    let _ = std::fs::remove_dir_all(&twin_dir);
    let _ = std::fs::remove_dir_all(&victim_dir);
    let result = run_case(
        case,
        &ops,
        kill_op,
        mangle,
        mangle_roll,
        &twin_dir,
        &victim_dir,
    );
    let _ = std::fs::remove_dir_all(&twin_dir);
    let _ = std::fs::remove_dir_all(&victim_dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    case: &GraphCase,
    ops: &[Op],
    kill_op: usize,
    mangle: Mangle,
    mangle_roll: u64,
    twin_dir: &Path,
    victim_dir: &Path,
) -> Result<(), String> {
    let ctx = |what: &str| {
        format!(
            "{what} (kill_op={kill_op}, mangle={mangle:?}, {})",
            case.repro()
        )
    };

    // The uninterrupted twin: run everything, keep post-kill replies.
    let twin = durable_service(case, twin_dir);
    let mut twin_tail = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let fp = apply_op(&twin, op);
        if i >= kill_op {
            if let Some(fp) = fp {
                twin_tail.push(fp);
            }
        }
    }

    // The victim: run to the kill point, die, mangle, warm-restart.
    let victim = durable_service(case, victim_dir);
    for op in &ops[..kill_op] {
        apply_op(&victim, op);
    }
    drop(victim);

    let fallbacks = fui_obs::counter("snapshot.persist.fallbacks");
    let torn = fui_obs::counter("snapshot.persist.journal_torn");
    let (fallbacks0, torn0) = (fallbacks.get(), torn.get());
    let mut expect_fallback = false;
    let mut expect_torn = false;
    match mangle {
        Mangle::None => {}
        Mangle::TornSnapshot => {
            let snaps =
                durable::list_snapshots(victim_dir).map_err(|e| ctx(&format!("list: {e}")))?;
            // Only tear when an older intact snapshot remains to fall
            // back to; snapshot-0 alone must stay whole.
            if snaps.len() >= 2 {
                let (_, newest) = &snaps[0];
                let len = std::fs::metadata(newest)
                    .map_err(|e| ctx(&format!("stat: {e}")))?
                    .len();
                let cut = 1 + mangle_roll % len.max(2).saturating_sub(1);
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(newest)
                    .map_err(|e| ctx(&format!("open: {e}")))?;
                f.set_len(cut).map_err(|e| ctx(&format!("truncate: {e}")))?;
                expect_fallback = true;
            }
        }
        Mangle::TornJournal => {
            let partial = durable::encode_record(u64::MAX, &durable::JournalOp::Rotate);
            let cut = 1 + (mangle_roll as usize) % (partial.len() - 1);
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(victim_dir.join(durable::JOURNAL_FILE))
                .map_err(|e| ctx(&format!("open journal: {e}")))?;
            use std::io::Write;
            f.write_all(&partial[..cut])
                .map_err(|e| ctx(&format!("tear journal: {e}")))?;
            expect_torn = true;
        }
    }

    let restored = Service::restore(victim_dir, SimMatrix::opencalais(), chaos_cfg())
        .map_err(|e| ctx(&format!("restore failed: {e}")))?;
    // Counter increments are no-ops unless FUI_OBS enables them.
    if fui_obs::counters_enabled() {
        if expect_fallback && fallbacks.get() == fallbacks0 {
            return Err(ctx("torn snapshot did not bump snapshot.persist.fallbacks"));
        }
        if expect_torn && torn.get() == torn0 {
            return Err(ctx(
                "torn journal did not bump snapshot.persist.journal_torn",
            ));
        }
    }

    // Post-recovery tail must answer bit-identically to the twin.
    let mut victim_tail = Vec::new();
    for op in &ops[kill_op..] {
        if let Some(fp) = apply_op(&restored, op) {
            victim_tail.push(fp);
        }
    }
    if victim_tail != twin_tail {
        return Err(ctx(&format!(
            "post-recovery replies diverged from the uninterrupted twin: \
             {victim_tail:?} vs {twin_tail:?}"
        )));
    }

    // And the two must agree on where the history ended.
    let (ts, vs) = (twin.snapshot(), restored.snapshot());
    if ts.epoch != vs.epoch || ts.graph_gen != vs.graph_gen {
        return Err(ctx(&format!(
            "final publication diverged: twin epoch={} gen={}, victim epoch={} gen={}",
            ts.epoch, ts.graph_gen, vs.epoch, vs.graph_gen
        )));
    }
    if twin.applied_seq() != restored.applied_seq() {
        return Err(ctx(&format!(
            "journal position diverged: twin {}, victim {}",
            twin.applied_seq(),
            restored.applied_seq()
        )));
    }
    Ok(())
}

// ---- sharded fleet crash recovery ------------------------------------

/// A fresh durable 2-shard fleet over `case` rooted at `dir` — same
/// landmarks, score parameters and [`chaos_cfg`] as
/// [`durable_service`], partition strategy alternating by seed parity.
pub fn durable_fleet(case: &GraphCase, dir: &Path) -> ShardedService {
    let graph = case.graph();
    let n = graph.num_nodes();
    let landmarks: Vec<NodeId> = graph.nodes().step_by(3).collect();
    ShardedService::with_durability(
        graph,
        SimMatrix::opencalais(),
        fui_core::ScoreParams {
            alpha: 0.8,
            beta: 0.25,
            tolerance: 1e-300,
            max_depth: 64,
        },
        fui_core::ScoreVariant::Full,
        landmarks,
        n,
        chaos_cfg(),
        write_spec(case),
        dir,
    )
    .expect("durable fleet build")
}

/// The spec the dying fleet writes under.
fn write_spec(case: &GraphCase) -> ShardSpec {
    let strategy = if case.seed % 2 == 0 {
        PartitionStrategy::Hash
    } else {
        PartitionStrategy::DegreeAware
    };
    ShardSpec::new(2, strategy)
}

/// Applies one op to a fleet; returns the reply fingerprint for
/// queries.
fn apply_fleet_op(flt: &ShardedService, op: &Op) -> Option<Vec<u64>> {
    match op {
        Op::Query(req) => Some(fingerprint(&flt.call(*req))),
        Op::Change(c) => {
            flt.record(*c).expect("script changes are valid");
            None
        }
        Op::Rotate => {
            flt.rotate();
            None
        }
        Op::Refresh => {
            flt.refresh();
            None
        }
    }
}

/// The sharded chaos invariant: a durable 2-shard fleet is killed at a
/// seeded op index — sometimes with a partial record stuck on the
/// fleet journal or on one *shard's* WAL tail (the cut-edge dual-write
/// side) — warm-restarted, and every post-recovery reply must be
/// bit-identical to an uninterrupted 2-shard twin. Half the cases
/// restore under a *different* shard spec (1–4 shards, the other
/// strategy): the partition is re-derived from the restored graph, so
/// the re-spec must be answer-invisible too.
pub fn check_fleet_crash_recovery_matches_twin(case: &GraphCase) -> Result<(), String> {
    if case.num_nodes < 2 {
        return Ok(());
    }
    let mut rng = SeededRng::new(case.seed.rotate_left(41));
    let ops = gen_ops(case, &mut rng);
    let kill_op = 1 + rng.below((ops.len() - 2) as u64) as usize;
    let mangle = rng.below(3); // 0 clean, 1 torn shard WAL, 2 torn fleet WAL
    let mangle_roll = rng.u64();
    let write = write_spec(case);
    let restore_spec = if rng.below(2) == 0 {
        write
    } else {
        let other = match write.strategy {
            PartitionStrategy::Hash => PartitionStrategy::DegreeAware,
            PartitionStrategy::DegreeAware => PartitionStrategy::Hash,
        };
        ShardSpec::new(1 + rng.below(4) as usize, other)
    };

    let twin_dir = scratch_dir(case, "fleet-twin");
    let victim_dir = scratch_dir(case, "fleet-victim");
    let _ = std::fs::remove_dir_all(&twin_dir);
    let _ = std::fs::remove_dir_all(&victim_dir);
    let result = (|| -> Result<(), String> {
        let ctx = |what: &str| {
            format!(
                "{what} (kill_op={kill_op}, mangle={mangle}, restore \
                 {}x{}, {})",
                restore_spec.shards,
                restore_spec.strategy.as_str(),
                case.repro()
            )
        };

        let twin = durable_fleet(case, &twin_dir);
        let mut twin_tail = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let fp = apply_fleet_op(&twin, op);
            if i >= kill_op {
                if let Some(fp) = fp {
                    twin_tail.push(fp);
                }
            }
        }

        let victim = durable_fleet(case, &victim_dir);
        for op in &ops[..kill_op] {
            apply_fleet_op(&victim, op);
        }
        drop(victim);

        match mangle {
            0 => {}
            torn => {
                // A partial record on a journal tail — either a seeded
                // shard's WAL (1) or the fleet journal (2); warm start
                // must drop the never-acknowledged bytes.
                let partial = durable::encode_record(u64::MAX, &durable::JournalOp::Rotate);
                let cut = 1 + (mangle_roll as usize) % (partial.len() - 1);
                let path = if torn == 1 {
                    let s = mangle_roll % u64::from(write.shards as u32);
                    victim_dir
                        .join(format!("shard-{s:04}"))
                        .join(durable::JOURNAL_FILE)
                } else {
                    victim_dir.join(durable::JOURNAL_FILE)
                };
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| ctx(&format!("open {}: {e}", path.display())))?;
                f.write_all(&partial[..cut])
                    .map_err(|e| ctx(&format!("tear journal: {e}")))?;
            }
        }

        let restored = ShardedService::restore(
            &victim_dir,
            SimMatrix::opencalais(),
            chaos_cfg(),
            restore_spec,
        )
        .map_err(|e| ctx(&format!("restore failed: {e}")))?;

        let mut victim_tail = Vec::new();
        for op in &ops[kill_op..] {
            if let Some(fp) = apply_fleet_op(&restored, op) {
                victim_tail.push(fp);
            }
        }
        if victim_tail != twin_tail {
            return Err(ctx(&format!(
                "post-recovery fleet replies diverged from the twin: \
                 {victim_tail:?} vs {twin_tail:?}"
            )));
        }
        if twin.epoch() != restored.epoch() || twin.graph_gen() != restored.graph_gen() {
            return Err(ctx(&format!(
                "final publication diverged: twin epoch={} gen={}, victim \
                 epoch={} gen={}",
                twin.epoch(),
                twin.graph_gen(),
                restored.epoch(),
                restored.graph_gen()
            )));
        }
        if twin.applied_seq() != restored.applied_seq() {
            return Err(ctx(&format!(
                "journal position diverged: twin {}, victim {}",
                twin.applied_seq(),
                restored.applied_seq()
            )));
        }
        if twin.pending_changes() != restored.pending_changes() {
            return Err(ctx(&format!(
                "pending queue diverged: twin {}, victim {}",
                twin.pending_changes(),
                restored.pending_changes()
            )));
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&twin_dir);
    let _ = std::fs::remove_dir_all(&victim_dir);
    result
}

// ---- corrupt snapshot fixture builders -------------------------------

/// Byte offset of the `epoch` header field in a snapshot file.
pub const SNAP_EPOCH_OFFSET: usize = 16;
/// Byte offset of the `graph_gen` header field in a snapshot file.
pub const SNAP_GRAPH_GEN_OFFSET: usize = 24;
/// Byte offset of the slot-count field in a snapshot file
/// (magic 8 + four `u64` counters + `ScoreParams` 28 + variant 1).
pub const SNAP_SLOT_COUNT_OFFSET: usize = 69;

/// Recomputes and rewrites the trailing checksum — fixtures splice
/// fields and then re-fix, so decoding exercises the semantic
/// validation behind the checksum, not the checksum itself.
pub fn refix_checksum(bytes: &mut [u8]) {
    assert!(bytes.len() > 8, "not a snapshot");
    let body = bytes.len() - 8;
    let sum = durable::checksum(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
}

/// Fixture: checksum-valid file whose `graph_gen` exceeds its `epoch`
/// — a generation the epoch never reached cannot come from a live
/// service, so warm start must reject it as implausible.
pub fn corrupt_stale_generation(snapshot: &[u8]) -> Vec<u8> {
    let mut out = snapshot.to_vec();
    let epoch = u64::from_le_bytes(
        out[SNAP_EPOCH_OFFSET..SNAP_EPOCH_OFFSET + 8]
            .try_into()
            .expect("8 bytes"),
    );
    out[SNAP_GRAPH_GEN_OFFSET..SNAP_GRAPH_GEN_OFFSET + 8]
        .copy_from_slice(&(epoch + 1).to_le_bytes());
    refix_checksum(&mut out);
    out
}

/// Fixture: checksum-valid file whose per-slot version table lost its
/// last entry — the slot count then disagrees with the embedded
/// landmark index, which warm start must reject.
pub fn corrupt_slot_mismatch(snapshot: &[u8]) -> Vec<u8> {
    let mut out = snapshot.to_vec();
    let at = SNAP_SLOT_COUNT_OFFSET;
    let slots = u32::from_le_bytes(out[at..at + 4].try_into().expect("4 bytes"));
    assert!(slots >= 1, "fixture needs at least one landmark slot");
    out[at..at + 4].copy_from_slice(&(slots - 1).to_le_bytes());
    // Drop the last 16-byte (version, staleness) entry.
    let entry_at = at + 4 + (slots as usize - 1) * 16;
    out.drain(entry_at..entry_at + 16);
    refix_checksum(&mut out);
    out
}
