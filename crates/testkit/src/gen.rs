//! Generated test instances and greedy shrinking.
//!
//! A [`GraphCase`] is a self-contained, rebuildable description of one
//! labeled social graph: node count, node labels, edge list. The
//! vendored proptest shim has no shrinking, so the harness carries its
//! own: [`minimize`] greedily deletes edges (and then trailing
//! isolated nodes) from a failing case while the failure persists, and
//! reports the smallest instance that still fails.

use fui_core::ScoreParams;
use fui_graph::{GraphBuilder, NodeId, SocialGraph};
use fui_taxonomy::{Topic, TopicSet};

use crate::rng::SeededRng;

/// A reproducible labeled-graph instance.
#[derive(Clone, Debug)]
pub struct GraphCase {
    /// Corpus preset name this case was drawn from.
    pub preset: &'static str,
    /// The seed that generated it.
    pub seed: u64,
    /// Number of accounts.
    pub num_nodes: usize,
    /// Publisher profile per node.
    pub node_labels: Vec<TopicSet>,
    /// Directed labeled edges `(follower, followee, labels)`,
    /// self-loop-free.
    pub edges: Vec<(u32, u32, TopicSet)>,
    /// Whether the preset guarantees acyclicity (every edge satisfies
    /// `follower < followee` in the presets that set this).
    pub acyclic: bool,
}

impl GraphCase {
    /// Builds the CSR graph (parallel edges merged by the builder).
    pub fn graph(&self) -> SocialGraph {
        let mut b = GraphBuilder::with_capacity(self.num_nodes, self.edges.len());
        for &l in &self.node_labels {
            b.add_node(l);
        }
        for &(u, v, l) in &self.edges {
            b.add_edge(NodeId(u), NodeId(v), l);
        }
        b.build()
    }

    /// One-line reproduction key for failure messages.
    pub fn repro(&self) -> String {
        format!(
            "preset={} seed={:#018x} nodes={} edges={}",
            self.preset,
            self.seed,
            self.num_nodes,
            self.edges.len()
        )
    }

    /// The case with edge `i` removed.
    fn without_edge(&self, i: usize) -> GraphCase {
        let mut c = self.clone();
        c.edges.remove(i);
        c
    }

    /// The case with trailing nodes that no remaining edge touches
    /// dropped (node ids are dense, so only a suffix can go).
    fn without_trailing_isolated(&self) -> GraphCase {
        let mut used = 1usize; // keep at least the query source, node 0
        for &(u, v, _) in &self.edges {
            used = used.max(u as usize + 1).max(v as usize + 1);
        }
        let mut c = self.clone();
        c.num_nodes = used;
        c.node_labels.truncate(used);
        c
    }
}

/// Greedily shrinks `case` while `check` keeps failing on it.
///
/// `check` is the same `Result`-returning predicate the oracle runs;
/// the minimizer never interprets the error text, it only preserves
/// "still fails". Returns the smallest failing case found together
/// with its error. Cost is `O(edges²)` checks in the worst case, fine
/// at harness scale (≤ a few dozen edges).
pub fn minimize(
    case: &GraphCase,
    check: impl Fn(&GraphCase) -> Result<(), String>,
) -> (GraphCase, String) {
    let mut err = match check(case) {
        Ok(()) => panic!("minimize called on a passing case ({})", case.repro()),
        Err(e) => e,
    };
    let mut best = case.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.edges.len() {
            let candidate = best.without_edge(i);
            if let Err(e) = check(&candidate) {
                best = candidate;
                err = e;
                shrunk = true;
                // Same index now names the next edge.
            } else {
                i += 1;
            }
        }
        let trimmed = best.without_trailing_isolated();
        if trimmed.num_nodes < best.num_nodes {
            if let Err(e) = check(&trimmed) {
                best = trimmed;
                err = e;
                shrunk = true;
            }
        }
        if !shrunk {
            return (best, err);
        }
    }
}

/// A random non-empty topic set of 1–3 topics.
pub fn gen_topicset(rng: &mut SeededRng) -> TopicSet {
    let k = 1 + rng.below(3);
    let mut s = TopicSet::empty();
    for _ in 0..k {
        s.insert(*rng.pick(&Topic::ALL));
    }
    s
}

/// A random topic.
pub fn gen_topic(rng: &mut SeededRng) -> Topic {
    *rng.pick(&Topic::ALL)
}

/// Score parameters for **fixed-depth** differential checks: the
/// comparison truncates both sides at the same walk length, so `β`
/// needs no spectral bound and the tolerance is set low enough that it
/// never triggers before the depth cap.
pub fn gen_params_fixed_depth(rng: &mut SeededRng) -> ScoreParams {
    ScoreParams {
        alpha: rng.f64_range(0.3, 1.0),
        beta: rng.f64_range(0.1, 0.4),
        tolerance: 1e-300,
        max_depth: 64,
    }
}

/// Score parameters for **run-to-convergence** checks on acyclic
/// instances: a DAG's frontier empties after at most `num_nodes`
/// levels, so convergence is exact for any `β`; the tolerance is
/// effectively disabled so no level is dropped early.
pub fn gen_params_dag(rng: &mut SeededRng) -> ScoreParams {
    ScoreParams {
        alpha: rng.f64_range(0.3, 1.0),
        beta: rng.f64_range(0.1, 0.5),
        tolerance: 1e-300,
        max_depth: 64,
    }
}

/// Score parameters for run-to-convergence checks on a (possibly
/// cyclic) graph: `β` is pulled under the Proposition 3 spectral bound
/// so the propagation converges geometrically.
pub fn gen_params_converging(rng: &mut SeededRng, graph: &SocialGraph) -> ScoreParams {
    let radius = fui_graph::spectral::spectral_radius(graph, 60);
    let cap = if radius > 0.0 { 0.6 / radius } else { 0.4 };
    ScoreParams {
        alpha: rng.f64_range(0.3, 1.0),
        beta: rng.f64_range(0.2, 1.0) * cap.min(0.4),
        tolerance: 1e-14,
        max_depth: 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Preset};

    #[test]
    fn case_rebuilds_identically() {
        let case = corpus::generate(Preset::Random, 99);
        let g1 = case.graph();
        let g2 = case.graph();
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn minimize_finds_a_single_culprit_edge() {
        // Fail whenever the edge 2 -> 3 is present: the minimizer must
        // strip everything else.
        let case = corpus::generate(Preset::Dag, 7);
        let has_culprit = |c: &GraphCase| c.edges.iter().any(|&(u, v, _)| (u, v) == (2, 3));
        if !has_culprit(&case) {
            return; // this seed happens not to draw the edge; fine
        }
        let check = |c: &GraphCase| {
            if has_culprit(c) {
                Err("culprit present".to_owned())
            } else {
                Ok(())
            }
        };
        let (small, err) = minimize(&case, check);
        assert_eq!(small.edges.len(), 1);
        assert_eq!((small.edges[0].0, small.edges[0].1), (2, 3));
        assert_eq!(small.num_nodes, 4);
        assert!(err.contains("culprit"));
    }

    #[test]
    fn generated_params_are_valid() {
        let mut rng = SeededRng::new(5);
        for _ in 0..32 {
            gen_params_fixed_depth(&mut rng).check_ranges().unwrap();
            gen_params_dag(&mut rng).check_ranges().unwrap();
        }
    }
}
