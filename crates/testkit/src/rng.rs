//! Seeded randomness for the harness.
//!
//! Wraps the vendored proptest shim's deterministic SplitMix64
//! [`TestRng`] with the draw helpers the generators need, plus a
//! stable per-case seed derivation so one **run seed** fans out into
//! independent, individually reproducible case seeds.

use proptest::test_runner::TestRng;

/// Deterministic RNG handed to every generator.
///
/// Same seed ⇒ same instance, on every platform and thread count —
/// the property the seed log relies on for reproduction.
pub struct SeededRng {
    inner: TestRng,
    seed: u64,
}

impl SeededRng {
    /// An RNG for the given seed.
    pub fn new(seed: u64) -> SeededRng {
        SeededRng {
            inner: TestRng::from_seed(seed),
            seed,
        }
    }

    /// The seed this RNG was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit draw.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.below(n as u128) as u64
    }

    /// Uniform value in `[lo, hi)` (`lo < hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Derives the case seed for `(run_seed, stream, index)` — a SplitMix
/// finalizer over the packed inputs, so neighbouring cases get
/// unrelated streams.
pub fn derive_seed(run_seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn draw_helpers_respect_bounds() {
        let mut r = SeededRng::new(7);
        for _ in 0..256 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
            let f = r.f64_range(0.25, 0.5);
            assert!((0.25..0.5).contains(&f));
            let p = *r.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&p));
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for i in 0..64u64 {
                assert!(seen.insert(derive_seed(0xEDB7_2016, stream, i)));
            }
        }
    }
}
