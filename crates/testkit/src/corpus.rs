//! Named corpus presets.
//!
//! Each preset draws a small labeled graph of a characteristic shape.
//! Instances are deliberately tiny (≤ 12 nodes): the exhaustive oracle
//! enumerates walks, so the corpus trades scale for full coverage of
//! the shapes the engine must survive — stars, chains, layered DAGs,
//! dense near-cliques and unconstrained random digraphs.
//!
//! All presets are self-loop-free by construction (the graph builder
//! rejects self-loops outright). The three acyclic presets additionally
//! guarantee that node 0 has in-degree zero and every edge goes from a
//! lower to a higher id — the property the exact-cover landmark
//! placement of [`crate::oracle::check_three_way`] relies on.

use fui_taxonomy::TopicSet;

use crate::gen::{gen_topicset, GraphCase};
use crate::rng::SeededRng;

/// A corpus shape to draw instances from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Node 0 follows every other node directly (acyclic, depth 1).
    Star,
    /// A single path `0 → 1 → ⋯ → n-1` (acyclic, maximal depth).
    Chain,
    /// Random layered DAG: every edge satisfies `u < v`.
    Dag,
    /// Two dense near-clique communities bridged by a few cross edges
    /// (cyclic, high spectral radius).
    DenseCommunity,
    /// Unconstrained random digraph, self-loop-free (cyclic in
    /// general).
    Random,
}

impl Preset {
    /// All presets, in the order the conformance suite runs them.
    pub const ALL: [Preset; 5] = [
        Preset::Star,
        Preset::Chain,
        Preset::Dag,
        Preset::DenseCommunity,
        Preset::Random,
    ];

    /// Stable lower-case name used in seed logs and failure messages.
    pub const fn name(self) -> &'static str {
        match self {
            Preset::Star => "star",
            Preset::Chain => "chain",
            Preset::Dag => "dag",
            Preset::DenseCommunity => "dense-community",
            Preset::Random => "random",
        }
    }

    /// Whether instances of this preset are guaranteed acyclic (with
    /// node 0 of in-degree zero).
    pub const fn acyclic(self) -> bool {
        matches!(self, Preset::Star | Preset::Chain | Preset::Dag)
    }
}

/// Draws the instance of `preset` for `seed`. Same `(preset, seed)`
/// pair ⇒ identical instance, the contract the seed log depends on.
pub fn generate(preset: Preset, seed: u64) -> GraphCase {
    let mut rng = SeededRng::new(seed);
    let r = &mut rng;
    match preset {
        Preset::Star => {
            let n = 3 + r.below(8) as usize; // 3..=10
            let labels = gen_labels(r, n);
            let edges = (1..n as u32).map(|v| (0, v, gen_topicset(r))).collect();
            case(preset, seed, n, labels, edges, true)
        }
        Preset::Chain => {
            let n = 2 + r.below(9) as usize; // 2..=10
            let labels = gen_labels(r, n);
            let edges = (0..n as u32 - 1)
                .map(|u| (u, u + 1, gen_topicset(r)))
                .collect();
            case(preset, seed, n, labels, edges, true)
        }
        Preset::Dag => {
            let n = 4 + r.below(7) as usize; // 4..=10
            let labels = gen_labels(r, n);
            let mut edges = Vec::new();
            // Spine keeps node 0 connected to the rest; extra forward
            // edges add diamond-shaped walk families.
            for v in 1..n as u32 {
                let u = r.below(u64::from(v)) as u32;
                edges.push((u, v, gen_topicset(r)));
            }
            let extra = r.below(n as u64) as usize;
            for _ in 0..extra {
                let u = r.below(n as u64 - 1) as u32;
                let v = u + 1 + r.below(n as u64 - 1 - u as u64) as u32;
                edges.push((u, v, gen_topicset(r)));
            }
            case(preset, seed, n, labels, edges, true)
        }
        Preset::DenseCommunity => {
            let half = 3 + r.below(2) as usize; // communities of 3..=4
            let n = half * 2;
            let labels = gen_labels(r, n);
            let mut edges = Vec::new();
            for c in 0..2u32 {
                let base = c * half as u32;
                for i in 0..half as u32 {
                    for j in 0..half as u32 {
                        if i != j && r.chance(0.8) {
                            edges.push((base + i, base + j, gen_topicset(r)));
                        }
                    }
                }
            }
            // A couple of bridges in each direction.
            for _ in 0..2 {
                let a = r.below(half as u64) as u32;
                let b = half as u32 + r.below(half as u64) as u32;
                edges.push((a, b, gen_topicset(r)));
                let c = half as u32 + r.below(half as u64) as u32;
                let d = r.below(half as u64) as u32;
                edges.push((c, d, gen_topicset(r)));
            }
            case(preset, seed, n, labels, edges, false)
        }
        Preset::Random => {
            let n = 3 + r.below(8) as usize; // 3..=10
            let labels = gen_labels(r, n);
            let m = n + r.below(2 * n as u64) as usize;
            let mut edges = Vec::new();
            for _ in 0..m {
                let u = r.below(n as u64) as u32;
                let mut v = r.below(n as u64) as u32;
                if v == u {
                    v = (v + 1) % n as u32; // never a self-loop
                }
                edges.push((u, v, gen_topicset(r)));
            }
            case(preset, seed, n, labels, edges, false)
        }
    }
}

fn gen_labels(rng: &mut SeededRng, n: usize) -> Vec<TopicSet> {
    (0..n).map(|_| gen_topicset(rng)).collect()
}

fn case(
    preset: Preset,
    seed: u64,
    num_nodes: usize,
    node_labels: Vec<TopicSet>,
    edges: Vec<(u32, u32, TopicSet)>,
    acyclic: bool,
) -> GraphCase {
    GraphCase {
        preset: preset.name(),
        seed,
        num_nodes,
        node_labels,
        edges,
        acyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_are_self_loop_free() {
        for preset in Preset::ALL {
            for seed in 0..32u64 {
                let case = generate(preset, seed);
                assert!(
                    case.edges.iter().all(|&(u, v, _)| u != v),
                    "{preset:?} seed {seed} drew a self-loop"
                );
                let g = case.graph(); // builder would panic on a loop
                g.check_consistency().unwrap();
                assert!(g.num_nodes() >= 2);
            }
        }
    }

    #[test]
    fn acyclic_presets_are_forward_only_with_free_source() {
        for preset in [Preset::Star, Preset::Chain, Preset::Dag] {
            for seed in 0..32u64 {
                let case = generate(preset, seed);
                assert!(case.acyclic);
                for &(u, v, _) in &case.edges {
                    assert!(u < v, "{preset:?} seed {seed}: backward edge {u}->{v}");
                }
                let g = case.graph();
                assert_eq!(g.in_degree(fui_graph::NodeId(0)), 0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for preset in Preset::ALL {
            let a = generate(preset, 1234);
            let b = generate(preset, 1234);
            assert_eq!(a.num_nodes, b.num_nodes);
            assert_eq!(a.node_labels, b.node_labels);
            assert_eq!(a.edges, b.edges);
        }
    }
}
