//! **fui-testkit** — the workspace's correctness harness: seeded
//! generators, a differential oracle, metamorphic invariants and a
//! mutation sanity check.
//!
//! The paper's value proposition is that three independent
//! computations of `σ(u, v, t)` agree:
//!
//! 1. the **exhaustive** path-sum of Definition 1
//!    ([`fui_core::exhaustive::enumerate`]),
//! 2. the **iterative propagation** of Proposition 1
//!    ([`fui_core::Propagator`]),
//! 3. the **landmark composition** of Proposition 4
//!    ([`fui_landmarks::ApproxRecommender`]).
//!
//! This crate turns that agreement from a handful of hand-written
//! spot checks into a systematic harness every future perf PR runs
//! against:
//!
//! * [`rng`] / [`gen`] — seeded, shrinkable instance generators
//!   (wrapping the vendored proptest RNG) for labeled graphs and
//!   [`fui_core::ScoreParams`];
//! * [`corpus`] — named presets (`star`, `chain`, `dag`,
//!   `dense-community`, `random`) spanning the shapes the engine must
//!   survive, all self-loop-free by construction;
//! * [`oracle`] — the differential oracle: fixed-depth
//!   exhaustive-vs-propagate equality on every instance, a full
//!   three-way check on DAG instances with an **exact-cover landmark
//!   placement** (every out-neighbour of the query node is a
//!   landmark, so Proposition 4's approximation error is provably
//!   zero — see [`oracle::check_three_way`]), and the paper's
//!   lower-bound guarantee on cyclic instances;
//! * [`invariants`] — reusable metamorphic assertions: monotonicity
//!   of σ in `α` and `β`, Katz monotonicity under edge addition,
//!   node-relabeling permutation invariance, Wu–Palmer sanity
//!   (`sim(t,t) = 1`, symmetry), and width-independent bit-equality
//!   through the [`fui_exec`] pool;
//! * [`mod@reference`] — an independent re-derivation of the authority
//!   normalizer plus deliberate off-by-one [`reference::Mutation`]s,
//!   proving the oracle has teeth (the injected bug **must** be
//!   caught);
//! * [`fuzz`] — deterministic byte-corruption helpers (truncation,
//!   bit flips, over-length field splices) for decoder robustness
//!   tests;
//! * [`chaos`] — the crash/recovery conformance invariant: kill a
//!   seeded durable-serving interleaving (optionally tearing the
//!   newest snapshot mid-write or the journal tail mid-append),
//!   warm-restart from disk, and bit-compare every post-recovery
//!   answer against an uninterrupted twin — plus corrupt-snapshot
//!   fixture builders for the warm-start fallback corpus;
//! * [`seedlog`] — per-case seed logging mirrored into `fui-obs`
//!   counters and written as a JSON run manifest, so any failing case
//!   can be reproduced from its `(preset, seed)` pair alone.
//!
//! Every check returns `Result<(), String>` instead of panicking, so
//! the harness can greedily shrink a failing instance
//! ([`gen::minimize`]) before reporting it.

#![warn(missing_docs)]

pub mod chaos;
pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod invariants;
pub mod oracle;
pub mod reference;
pub mod rng;
pub mod seedlog;

pub use corpus::Preset;
pub use gen::GraphCase;
pub use rng::SeededRng;
pub use seedlog::SeedLog;
