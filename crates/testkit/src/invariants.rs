//! Metamorphic invariants — reusable `Result`-returning assertions.
//!
//! Each check states a property the scoring pipeline must satisfy
//! under a *transformation* of the input rather than against a known
//! answer:
//!
//! * σ and the Katz mass are **monotone** in the decay factors α and β
//!   (every walk contribution is a product of non-negative factors,
//!   each non-decreasing in the decays);
//! * adding an edge can only **add walks**, so the Katz score is
//!   monotone under edge addition;
//! * node ids are arbitrary — **relabeling the nodes by a permutation
//!   permutes the scores** and changes nothing else;
//! * the Wu–Palmer similarity is a proper similarity: `sim(t,t) = 1`,
//!   symmetric, and within `[0, 1]`;
//! * the [`fui_exec`] pool is **width-invariant**: the same computation
//!   at width 1 and width `N` produces bit-identical results.

use fui_core::{
    AuthorityIndex, PropWorkspace, PropagateOpts, Propagator, ScoreParams, ScoreVariant,
};
use fui_graph::{NodeId, SocialGraph};
use fui_landmarks::{persist, ApproxRecommender, LandmarkIndex};
use fui_taxonomy::{SimMatrix, Taxonomy, Topic};

use crate::gen::GraphCase;
use crate::rng::SeededRng;

/// Comparison depth of the monotonicity checks (both runs truncate at
/// the same walk length, so no convergence bound is needed).
const DEPTH: u32 = 3;

/// Slack for comparisons that are mathematically `≥`: a sum computed
/// twice with different constants may differ in the last ulps.
const EPS: f64 = 1e-12;

fn run_at(
    graph: &SocialGraph,
    auth: &AuthorityIndex,
    sim: &SimMatrix,
    params: ScoreParams,
    source: NodeId,
    topics: &[Topic],
) -> fui_core::Propagation {
    let p = Propagator::new(graph, auth, sim, params, ScoreVariant::Full);
    p.propagate(
        source,
        topics,
        PropagateOpts {
            max_depth: Some(DEPTH),
            ..Default::default()
        },
    )
}

fn fixed_depth_params(alpha: f64, beta: f64) -> ScoreParams {
    ScoreParams {
        alpha,
        beta,
        tolerance: 1e-300,
        max_depth: 64,
    }
}

/// σ is monotone non-decreasing in α (β and everything else fixed).
pub fn check_sigma_monotone_alpha(case: &GraphCase) -> Result<(), String> {
    check_monotone(case, |lo, hi| {
        (fixed_depth_params(lo, 0.3), fixed_depth_params(hi, 0.3))
    })
}

/// σ is monotone non-decreasing in β (α fixed).
pub fn check_sigma_monotone_beta(case: &GraphCase) -> Result<(), String> {
    check_monotone(case, |lo, hi| {
        (fixed_depth_params(0.7, lo), fixed_depth_params(0.7, hi))
    })
}

fn check_monotone(
    case: &GraphCase,
    params_pair: impl Fn(f64, f64) -> (ScoreParams, ScoreParams),
) -> Result<(), String> {
    let graph = case.graph();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let mut rng = SeededRng::new(case.seed.rotate_left(5));
    let lo = rng.f64_range(0.1, 0.5);
    let hi = lo + rng.f64_range(0.1, 0.4);
    let (p_lo, p_hi) = params_pair(lo, hi);
    let source = NodeId(rng.below(graph.num_nodes() as u64) as u32);
    let topics = [Topic::Technology, Topic::Social];
    let r_lo = run_at(&graph, &auth, &sim, p_lo, source, &topics);
    let r_hi = run_at(&graph, &auth, &sim, p_hi, source, &topics);
    for v in graph.nodes() {
        for &t in &topics {
            let (a, b) = (r_lo.sigma(v, t), r_hi.sigma(v, t));
            if b < a - EPS {
                return Err(format!(
                    "sigma not monotone at node {v} topic {t}: {a} (decay {lo}) \
                     > {b} (decay {hi}) ({})",
                    case.repro()
                ));
            }
        }
        if r_hi.topo_beta(v) < r_lo.topo_beta(v) - EPS {
            return Err(format!(
                "topo_beta not monotone at node {v} ({})",
                case.repro()
            ));
        }
    }
    Ok(())
}

/// Adding one edge never lowers any node's Katz mass (it only adds
/// walks), and never lowers σ either — all contributions are
/// non-negative.
pub fn check_katz_monotone_edge_addition(case: &GraphCase) -> Result<(), String> {
    let graph = case.graph();
    let n = graph.num_nodes();
    let mut rng = SeededRng::new(case.seed.rotate_left(9));
    // Find a pair (u, v) with no u→v edge; a complete digraph has no
    // room to grow, so the property holds vacuously.
    let mut missing = None;
    'search: for _ in 0..4 * n * n {
        let u = NodeId(rng.below(n as u64) as u32);
        let v = NodeId(rng.below(n as u64) as u32);
        if u != v && !graph.followees(u).contains(&v) {
            missing = Some((u, v));
            break 'search;
        }
    }
    let Some((u, v)) = missing else {
        return Ok(());
    };
    let grown = graph.with_edges(&[(u, v, crate::gen::gen_topicset(&mut rng))]);
    let params = fixed_depth_params(0.7, 0.3);
    let source = NodeId(rng.below(n as u64) as u32);
    let topics = [Topic::Technology];
    // Authority is rebuilt per graph: the new edge changes follower
    // counts, which may *lower* σ elsewhere through normalisation —
    // the pure-topology Katz mass is the quantity with the clean
    // guarantee, so that is what the invariant pins.
    let auth_before = AuthorityIndex::build(&graph);
    let auth_after = AuthorityIndex::build(&grown);
    let sim = SimMatrix::opencalais();
    let before = run_at(&graph, &auth_before, &sim, params, source, &topics);
    let after = run_at(&grown, &auth_after, &sim, params, source, &topics);
    for w in graph.nodes() {
        if after.topo_beta(w) < before.topo_beta(w) - EPS {
            return Err(format!(
                "katz mass dropped after adding edge {u}->{v}: node {w} \
                 {} -> {} ({})",
                before.topo_beta(w),
                after.topo_beta(w),
                case.repro()
            ));
        }
    }
    Ok(())
}

/// Relabeling the nodes by a permutation permutes the scores: running
/// from `π(source)` on the permuted graph yields `σ'(π(v)) = σ(v)` for
/// every node and topic.
pub fn check_permutation_invariance(case: &GraphCase) -> Result<(), String> {
    let mut rng = SeededRng::new(case.seed.rotate_left(13));
    let n = case.num_nodes;
    // A seeded Fisher–Yates permutation of the node ids.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut permuted = case.clone();
    permuted.node_labels = vec![Default::default(); n];
    for (v, &l) in case.node_labels.iter().enumerate() {
        permuted.node_labels[perm[v] as usize] = l;
    }
    permuted.edges = case
        .edges
        .iter()
        .map(|&(u, v, l)| (perm[u as usize], perm[v as usize], l))
        .collect();
    permuted.acyclic = false; // forward-edge ordering no longer holds

    let params = fixed_depth_params(0.8, 0.25);
    let sim = SimMatrix::opencalais();
    let g1 = case.graph();
    let g2 = permuted.graph();
    let a1 = AuthorityIndex::build(&g1);
    let a2 = AuthorityIndex::build(&g2);
    let source = NodeId(rng.below(n as u64) as u32);
    let topics = [Topic::Technology, Topic::Business];
    let r1 = run_at(&g1, &a1, &sim, params, source, &topics);
    let r2 = run_at(
        &g2,
        &a2,
        &sim,
        params,
        NodeId(perm[source.index()]),
        &topics,
    );
    for v in g1.nodes() {
        let pv = NodeId(perm[v.index()]);
        for &t in &topics {
            let (a, b) = (r1.sigma(v, t), r2.sigma(pv, t));
            if (a - b).abs() > EPS {
                return Err(format!(
                    "permutation broke sigma at node {v} (image {pv}) topic {t}: \
                     {a} vs {b} ({})",
                    case.repro()
                ));
            }
        }
        if (r1.topo_beta(v) - r2.topo_beta(pv)).abs() > EPS {
            return Err(format!(
                "permutation broke topo_beta at node {v} ({})",
                case.repro()
            ));
        }
    }
    Ok(())
}

/// The Wu–Palmer similarity is a proper similarity measure:
/// `sim(t,t) = 1`, symmetric, and within `[0, 1]` — both on the
/// [`Taxonomy`] directly and through the precomputed [`SimMatrix`].
pub fn check_similarity_axioms() -> Result<(), String> {
    let tax = Taxonomy::opencalais();
    let m = SimMatrix::opencalais();
    for a in Topic::ALL {
        let self_sim = tax.wu_palmer(a, a);
        if (self_sim - 1.0).abs() > EPS {
            return Err(format!("wu_palmer({a},{a}) = {self_sim}, expected 1"));
        }
        if (m.sim(a, a) - 1.0).abs() > EPS {
            return Err(format!(
                "sim matrix ({a},{a}) = {}, expected 1",
                m.sim(a, a)
            ));
        }
        for b in Topic::ALL {
            let (ab, ba) = (tax.wu_palmer(a, b), tax.wu_palmer(b, a));
            if (ab - ba).abs() > EPS {
                return Err(format!(
                    "wu_palmer asymmetric: ({a},{b})={ab} ({b},{a})={ba}"
                ));
            }
            if !(0.0..=1.0).contains(&ab) {
                return Err(format!("wu_palmer({a},{b}) = {ab} outside [0,1]"));
            }
            if (m.sim(a, b) - m.sim(b, a)).abs() > EPS {
                return Err(format!("sim matrix asymmetric at ({a},{b})"));
            }
        }
    }
    Ok(())
}

/// Width-invariance through the [`fui_exec`] pool: the landmark
/// preprocessing fanned out at width 1 and width `n` must serialise to
/// **byte-identical** snapshots, and a plain `par_map` must return
/// bit-identical floats. (Cross-process `FUI_THREADS=1` vs `N`
/// equality is enforced by the CI conformance job; this in-process
/// check covers explicit widths.)
pub fn check_pool_width_invariance(case: &GraphCase, width: usize) -> Result<(), String> {
    let graph = case.graph();
    let n = graph.num_nodes();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let params = fixed_depth_params(0.8, 0.2);
    let p = Propagator::new(&graph, &auth, &sim, params, ScoreVariant::Full);
    let landmarks: Vec<NodeId> = graph.nodes().step_by(2).collect();
    let serial = LandmarkIndex::build_parallel(&p, landmarks.clone(), n, 1);
    let wide = LandmarkIndex::build_parallel(&p, landmarks, n, width);
    let bytes_serial = persist::encode(&serial, n);
    let bytes_wide = persist::encode(&wide, n);
    if bytes_serial.as_ref() != bytes_wide.as_ref() {
        return Err(format!(
            "landmark build diverges between width 1 and width {width} \
             ({})",
            case.repro()
        ));
    }
    let sources: Vec<NodeId> = graph.nodes().collect();
    let sig = |width| {
        fui_exec::par_map_with(width, &sources, |&s| {
            let r = p.propagate(s, &[Topic::Technology], PropagateOpts::default());
            (0..n as u32)
                .map(|v| r.sigma(NodeId(v), Topic::Technology).to_bits())
                .collect::<Vec<u64>>()
        })
    };
    if sig(1) != sig(width) {
        return Err(format!(
            "par_map sigma bits diverge between width 1 and {width} ({})",
            case.repro()
        ));
    }
    Ok(())
}

/// The zero-allocation propagation path is **bit-exact**: runs through
/// a reused [`PropWorkspace`] — whatever ran in it before, whatever the
/// sigma layout of the previous run — read back bit-identical to
/// fresh-buffer runs, and workspace-pooled batched queries equal their
/// serial counterparts byte for byte. (The CI conformance matrix runs
/// this at `FUI_THREADS=1` and `FUI_THREADS=4`, covering both the
/// inline serial pool path and true per-worker workspace pooling.)
pub fn check_workspace_reuse_matches_fresh(case: &GraphCase) -> Result<(), String> {
    let graph = case.graph();
    let n = graph.num_nodes();
    let auth = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let params = fixed_depth_params(0.75, 0.3);
    let p = Propagator::new(&graph, &auth, &sim, params, ScoreVariant::Full);
    let mut rng = SeededRng::new(case.seed.rotate_left(17));
    // A landmark-style mask flagging roughly a third of the nodes.
    let mask: Vec<bool> = (0..n).map(|_| rng.below(3) == 0).collect();
    let topic_pool: [&[Topic]; 4] = [
        &[Topic::Technology],
        &[Topic::Technology, Topic::Social, Topic::Business],
        &[],
        &Topic::ALL,
    ];

    // One workspace across runs that vary source, sigma layout, depth
    // and pruning — each compared bit-for-bit against a fresh run.
    let mut ws = PropWorkspace::new();
    for round in 0..8u32 {
        let source = NodeId(rng.below(n as u64) as u32);
        let topics = topic_pool[rng.below(topic_pool.len() as u64) as usize];
        let opts = PropagateOpts {
            max_depth: match rng.below(4) {
                0 => Some(0),
                1 => Some(2),
                2 => Some(DEPTH),
                _ => None,
            },
            prune: (rng.below(2) == 0).then_some(mask.as_slice()),
        };
        let fresh = p.propagate(source, topics, opts);
        let reused = p.propagate_into(&mut ws, source, topics, opts);
        if reused.reached() != &fresh.reached[..]
            || reused.levels() != fresh.levels
            || reused.converged() != fresh.converged
        {
            return Err(format!(
                "workspace round {round}: run shape diverged from fresh \
                 buffers at source {source} ({})",
                case.repro()
            ));
        }
        for v in graph.nodes() {
            if reused.topo_beta(v).to_bits() != fresh.topo_beta(v).to_bits()
                || reused.topo_alphabeta(v).to_bits() != fresh.topo_alphabeta(v).to_bits()
            {
                return Err(format!(
                    "workspace round {round}: topo bits diverged at node {v} \
                     ({})",
                    case.repro()
                ));
            }
            for ti in 0..topics.len() {
                if reused.sigma_at(v, ti).to_bits() != fresh.sigma_at(v, ti).to_bits() {
                    return Err(format!(
                        "workspace round {round}: sigma bits diverged at node \
                         {v} column {ti} ({})",
                        case.repro()
                    ));
                }
            }
        }
    }

    // The batched query path pools workspaces per fui-exec worker; its
    // answers must still equal serial one-shot queries bit for bit.
    let landmarks: Vec<NodeId> = graph.nodes().filter(|v| mask[v.index()]).collect();
    let index = LandmarkIndex::build(&p, landmarks, n);
    let approx = ApproxRecommender::new(&p, &index);
    let queries: Vec<(NodeId, Topic)> = (0..2 * n)
        .map(|_| {
            (
                NodeId(rng.below(n as u64) as u32),
                Topic::ALL[rng.below(Topic::ALL.len() as u64) as usize],
            )
        })
        .collect();
    let batched = approx.recommend_batch(&queries, 5);
    for (res, &(u, t)) in batched.iter().zip(&queries) {
        let serial = approx.recommend(u, t, 5);
        if res.recommendations.len() != serial.recommendations.len()
            || res
                .recommendations
                .iter()
                .zip(&serial.recommendations)
                .any(|(a, b)| a.0 != b.0 || a.1.to_bits() != b.1.to_bits())
        {
            return Err(format!(
                "pooled batch diverged from serial at query ({u}, {t}) ({})",
                case.repro()
            ));
        }
    }
    Ok(())
}

/// The serving layer's result cache is *invisible*: under a seeded
/// interleaving of queries, follow/unfollow updates, snapshot
/// rotations, landmark refreshes and submit/pump bursts, every reply —
/// cache hit or fresh — must be **bit-identical** to an uncached
/// [`ApproxRecommender`] evaluated directly on the currently published
/// snapshot (post-update graph + possibly-lazily-stale index, exactly
/// what the service serves), and every accepted request must be
/// answered — a submit either yields a ticket that resolves to a
/// result or an explicit `Overloaded`, never silence. (The CI
/// conformance matrix runs this at `FUI_THREADS=1` and `FUI_THREADS=4`;
/// the service's only parallel stage reduces in index order, so the
/// bits must not move.)
pub fn check_cached_matches_uncached(case: &GraphCase) -> Result<(), String> {
    use fui_landmarks::EdgeChange;
    use fui_service::{Reply, Request, Served, Service, ServiceConfig};

    let graph = case.graph();
    let n = graph.num_nodes();
    let mut rng = SeededRng::new(case.seed.rotate_left(21));
    let landmarks: Vec<NodeId> = graph.nodes().step_by(3).collect();
    let cfg = ServiceConfig {
        max_batch: 4,
        queue_capacity: 8,
        cache_capacity: 64,
        cache_shards: 4,
        // Aggressive staleness policy so refreshes actually fire on
        // these tiny cases.
        refresh_threshold: 0.02,
        ..ServiceConfig::default()
    };
    let svc = Service::new(
        graph,
        SimMatrix::opencalais(),
        fixed_depth_params(0.8, 0.25),
        ScoreVariant::Full,
        landmarks,
        n,
        cfg,
    );

    // The oracle: a fresh, cache-free recommender on whatever snapshot
    // the service currently publishes.
    let oracle = |req: Request| -> Vec<(NodeId, f64)> {
        let snap = svc.snapshot();
        let p = snap.propagator();
        let rec = ApproxRecommender::new(&p, &snap.index);
        rec.recommend(req.user, req.topic, req.top_n)
            .recommendations
    };
    let confirm = |reply: Reply, req: Request, what: &str| -> Result<Served, String> {
        let Reply::Result(served) = reply else {
            return Err(format!(
                "{what} for user {} got a non-result reply ({})",
                req.user,
                case.repro()
            ));
        };
        let want = oracle(req);
        if served.recommendations.len() != want.len()
            || served
                .recommendations
                .iter()
                .zip(&want)
                .any(|(a, b)| a.0 != b.0 || a.1.to_bits() != b.1.to_bits())
        {
            return Err(format!(
                "{what} diverged from the uncached oracle at user {} topic {} \
                 top_n {} (cached={}, {})",
                req.user,
                req.topic,
                req.top_n,
                served.cached,
                case.repro()
            ));
        }
        Ok(served)
    };
    let gen_req = |rng: &mut SeededRng| Request {
        user: NodeId(rng.below(n as u64) as u32),
        topic: *rng.pick(&Topic::ALL[..4]),
        top_n: 1 + rng.below(n as u64) as usize,
    };

    let mut seen: Vec<Request> = Vec::new();
    for _ in 0..40u32 {
        match rng.below(10) {
            // Query — a replay of an earlier request (cache-hit bait)
            // or a fresh one.
            0..=4 => {
                let req = if !seen.is_empty() && rng.below(2) == 0 {
                    *rng.pick(&seen)
                } else {
                    let r = gen_req(&mut rng);
                    seen.push(r);
                    r
                };
                confirm(svc.call(req), req, "call")?;
            }
            // Follow / unfollow.
            5 | 6 => {
                let u = NodeId(rng.below(n as u64) as u32);
                let v = NodeId(rng.below(n as u64) as u32);
                if u != v {
                    let change = if rng.below(2) == 0 {
                        EdgeChange::insert(u, v, crate::gen::gen_topicset(&mut rng))
                    } else {
                        EdgeChange::remove(u, v, Default::default())
                    };
                    svc.record(change)
                        .map_err(|e| format!("record failed: {e} ({})", case.repro()))?;
                }
            }
            7 => {
                svc.rotate();
            }
            8 => {
                svc.refresh();
            }
            // Submit burst past the queue capacity: sheds must be
            // explicit and immediate, accepted tickets must resolve to
            // oracle-identical results once pumped.
            _ => {
                let reqs: Vec<Request> = (0..12).map(|_| gen_req(&mut rng)).collect();
                let mut tickets = Vec::new();
                let mut shed = 0usize;
                for &req in &reqs {
                    match svc.submit(req, None) {
                        Ok(t) => tickets.push((req, t)),
                        Err(Reply::Overloaded) => shed += 1,
                        Err(other) => {
                            return Err(format!("submit returned {other:?} ({})", case.repro()))
                        }
                    }
                }
                if tickets.len() + shed != reqs.len() {
                    return Err(format!("requests lost at submit ({})", case.repro()));
                }
                while svc.pump() > 0 {}
                for (req, t) in tickets {
                    confirm(t.wait(), req, "pumped submit")?;
                }
            }
        }
    }

    // Determinism coda: with no mutation in between, a repeated call
    // must be served from the cache and still match the oracle.
    let req = gen_req(&mut rng);
    confirm(svc.call(req), req, "coda first call")?;
    let second = confirm(svc.call(req), req, "coda second call")?;
    if !second.cached {
        return Err(format!(
            "repeat of an un-invalidated request bypassed the cache ({})",
            case.repro()
        ));
    }
    Ok(())
}

/// Sharding is *invisible*: the same seeded serving interleaving
/// (queries with replay bait, follow/unfollow, rotations, refreshes —
/// fired staggered per shard — and submit/pump bursts) driven through
/// the unsharded [`fui_service::Service`] and through
/// [`fui_service::ShardedService`] fleets at 2 and 4 shards must
/// produce **bit-identical** reply fingerprints: epochs, node
/// orderings, score bits, rotation epochs and refresh counts. The
/// partition strategy alternates by seed parity so both `hash` and
/// `degree-aware` placements are swept. A tie-heavy star-graph coda
/// (identical leaves, `top_n` below the leaf count) additionally pins
/// the id-ascending tie-break at the merge cut, the spot where a
/// sloppy scatter/gather would first drift. (The CI conformance matrix
/// runs this at `FUI_THREADS=1` and `FUI_THREADS=4`; the cached flag
/// is deliberately *not* fingerprinted — per-shard caches partition
/// capacity differently, and cache residency is allowed to differ as
/// long as served bits do not.)
pub fn check_sharded_matches_unsharded(case: &GraphCase) -> Result<(), String> {
    use fui_graph::{GraphBuilder, PartitionStrategy};
    use fui_landmarks::EdgeChange;
    use fui_service::{Reply, Request, Service, ServiceConfig, ShardSpec, ShardedService};
    use fui_taxonomy::TopicSet;

    enum Engine {
        Flat(Service),
        Fleet(ShardedService),
    }
    impl Engine {
        fn call(&self, r: Request) -> Reply {
            match self {
                Engine::Flat(s) => s.call(r),
                Engine::Fleet(f) => f.call(r),
            }
        }
        fn record(&self, c: EdgeChange) -> Result<(), String> {
            match self {
                Engine::Flat(s) => s.record(c),
                Engine::Fleet(f) => f.record(c),
            }
        }
        fn rotate(&self) -> u64 {
            match self {
                Engine::Flat(s) => s.rotate(),
                Engine::Fleet(f) => f.rotate(),
            }
        }
        fn refresh(&self) -> usize {
            match self {
                Engine::Flat(s) => s.refresh(),
                Engine::Fleet(f) => f.refresh(),
            }
        }
        fn submit(&self, r: Request) -> Result<fui_service::Ticket, Reply> {
            match self {
                Engine::Flat(s) => s.submit(r, None),
                Engine::Fleet(f) => f.submit(r, None),
            }
        }
        fn pump(&self) -> usize {
            match self {
                Engine::Flat(s) => s.pump(),
                Engine::Fleet(f) => f.pump(),
            }
        }
    }

    let cfg = ServiceConfig {
        max_batch: 4,
        queue_capacity: 8,
        cache_capacity: 64,
        cache_shards: 4,
        refresh_threshold: 0.02,
        ..ServiceConfig::default()
    };
    let strategy = if case.seed % 2 == 0 {
        PartitionStrategy::Hash
    } else {
        PartitionStrategy::DegreeAware
    };
    let n = case.num_nodes;
    let landmarks = |g: &SocialGraph| -> Vec<NodeId> { g.nodes().step_by(3).collect() };
    let params = fixed_depth_params(0.8, 0.25);

    // One full seeded interleaving against a fresh engine; the
    // fingerprint captures every served bit *except* cache residency.
    // Submit bursts stay at the queue capacity so admission never
    // sheds: per-shard queues each carry the full configured capacity,
    // so shed patterns are one place a fleet legitimately differs.
    let fingerprint = |engine: &Engine| -> Result<Vec<u64>, String> {
        let mut rng = SeededRng::new(case.seed.rotate_left(27));
        let gen_req = |rng: &mut SeededRng| Request {
            user: NodeId(rng.below(n as u64) as u32),
            topic: *rng.pick(&Topic::ALL[..4]),
            top_n: 1 + rng.below(n as u64) as usize,
        };
        let mut bits = Vec::new();
        let digest = |reply: Reply, bits: &mut Vec<u64>| -> Result<(), String> {
            match reply {
                Reply::Result(s) => {
                    bits.push(s.epoch);
                    for &(v, score) in s.recommendations.iter() {
                        bits.push(u64::from(v.0));
                        bits.push(score.to_bits());
                    }
                }
                Reply::Overloaded => bits.push(u64::MAX),
                Reply::Rejected(_) => {
                    return Err(format!("unexpected rejection ({})", case.repro()))
                }
            }
            Ok(())
        };
        let mut seen: Vec<Request> = Vec::new();
        for _ in 0..40u32 {
            match rng.below(10) {
                // Query — replayed (cache-hit bait on one side, maybe
                // a miss on the other) or fresh.
                0..=4 => {
                    let req = if !seen.is_empty() && rng.below(2) == 0 {
                        *rng.pick(&seen)
                    } else {
                        let r = gen_req(&mut rng);
                        seen.push(r);
                        r
                    };
                    digest(engine.call(req), &mut bits)?;
                }
                5 | 6 => {
                    let u = NodeId(rng.below(n as u64) as u32);
                    let v = NodeId(rng.below(n as u64) as u32);
                    if u != v {
                        let change = if rng.below(2) == 0 {
                            EdgeChange::insert(u, v, crate::gen::gen_topicset(&mut rng))
                        } else {
                            EdgeChange::remove(u, v, Default::default())
                        };
                        engine
                            .record(change)
                            .map_err(|e| format!("record failed: {e} ({})", case.repro()))?;
                    }
                }
                7 => bits.push(engine.rotate()),
                8 => bits.push(engine.refresh() as u64),
                // Submit burst at exactly the queue capacity: accepted
                // everywhere, answered identically everywhere.
                _ => {
                    let reqs: Vec<Request> = (0..8).map(|_| gen_req(&mut rng)).collect();
                    let mut tickets = Vec::new();
                    for &req in &reqs {
                        match engine.submit(req) {
                            Ok(t) => tickets.push(t),
                            Err(_) => bits.push(u64::MAX),
                        }
                    }
                    while engine.pump() > 0 {}
                    for t in tickets {
                        digest(t.wait(), &mut bits)?;
                    }
                }
            }
        }
        Ok(bits)
    };

    let build_graph = || case.graph();
    let flat = {
        let g = build_graph();
        let lm = landmarks(&g);
        Engine::Flat(Service::new(
            g,
            SimMatrix::opencalais(),
            params,
            ScoreVariant::Full,
            lm,
            n,
            cfg,
        ))
    };
    let baseline = fingerprint(&flat)?;
    for shards in [2usize, 4] {
        let g = build_graph();
        let lm = landmarks(&g);
        let fleet = Engine::Fleet(ShardedService::new(
            g,
            SimMatrix::opencalais(),
            params,
            ScoreVariant::Full,
            lm,
            n,
            cfg,
            ShardSpec::new(shards, strategy),
        ));
        let bits = fingerprint(&fleet)?;
        if bits != baseline {
            let at = bits
                .iter()
                .zip(&baseline)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| bits.len().min(baseline.len()));
            return Err(format!(
                "{shards}-shard {} fleet diverged from the unsharded engine \
                 at fingerprint word {at} ({} vs {} words, {})",
                strategy.as_str(),
                bits.len(),
                baseline.len(),
                case.repro()
            ));
        }
    }

    // Tie-heavy coda: a star whose leaves are indistinguishable, with
    // `top_n` strictly below the leaf count — the merged top-k *must*
    // cut by ascending id, whichever shard each tied leaf lives on.
    let leaves = 5 + (case.seed % 4) as usize;
    let star_graph = || -> SocialGraph {
        let mut b = GraphBuilder::new();
        let tech = TopicSet::single(Topic::Technology);
        for _ in 0..=leaves {
            b.add_node(tech);
        }
        for leaf in 1..=leaves as u32 {
            b.add_edge(NodeId(0), NodeId(leaf), tech);
            b.add_edge(NodeId(leaf), NodeId(0), tech);
        }
        b.build()
    };
    let star_n = leaves + 1;
    let star_landmarks: Vec<NodeId> = (0..star_n as u32).step_by(2).map(NodeId).collect();
    let make = |shards: Option<usize>| -> Engine {
        match shards {
            None => Engine::Flat(Service::new(
                star_graph(),
                SimMatrix::opencalais(),
                params,
                ScoreVariant::Full,
                star_landmarks.clone(),
                star_n,
                cfg,
            )),
            Some(k) => Engine::Fleet(ShardedService::new(
                star_graph(),
                SimMatrix::opencalais(),
                params,
                ScoreVariant::Full,
                star_landmarks.clone(),
                star_n,
                cfg,
                ShardSpec::new(k, strategy),
            )),
        }
    };
    let star_queries: Vec<Request> = (0..=leaves as u32)
        .map(|u| Request {
            user: NodeId(u),
            topic: Topic::Technology,
            top_n: leaves - 2,
        })
        .collect();
    let star_bits = |e: &Engine| -> Result<Vec<u64>, String> {
        let mut bits = Vec::new();
        for &req in &star_queries {
            match e.call(req) {
                Reply::Result(s) => {
                    for &(v, score) in s.recommendations.iter() {
                        bits.push(u64::from(v.0));
                        bits.push(score.to_bits());
                    }
                }
                other => return Err(format!("star coda non-result {other:?}")),
            }
        }
        Ok(bits)
    };
    let star_base = star_bits(&make(None))?;
    for shards in [2usize, 4] {
        if star_bits(&make(Some(shards)))? != star_base {
            return Err(format!(
                "tie-heavy star coda: {shards}-shard {} merge broke the \
                 id-ascending tie cut ({})",
                strategy.as_str(),
                case.repro()
            ));
        }
    }
    Ok(())
}

/// Request tracing is *bit-invisible*: the same seeded serving
/// interleaving (queries, follow/unfollow, rotations, refreshes and a
/// submit burst past queue capacity) replayed at trace sample rates
/// 0.0, 0.5 and 1.0 — with the obs level forced to `Full` so capture
/// is actually live — must produce identical reply fingerprints (node
/// ids, score bits, cached flags, epochs and shed sentinels). Tracing
/// reads clocks and writes its own ring; if it ever influences a
/// result, this catches it. (The CI conformance matrix runs this at
/// `FUI_THREADS=1` and `FUI_THREADS=4`.)
pub fn check_tracing_is_invisible(case: &GraphCase) -> Result<(), String> {
    use fui_landmarks::EdgeChange;
    use fui_service::{Reply, Request, Service, ServiceConfig};

    // One full seeded interleaving against a fresh service; returns a
    // bit-level fingerprint of every reply.
    let fingerprint = || -> Result<Vec<u64>, String> {
        let graph = case.graph();
        let n = graph.num_nodes();
        let mut rng = SeededRng::new(case.seed.rotate_left(33));
        let landmarks: Vec<NodeId> = graph.nodes().step_by(3).collect();
        let cfg = ServiceConfig {
            max_batch: 4,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 4,
            refresh_threshold: 0.02,
            ..ServiceConfig::default()
        };
        let svc = Service::new(
            graph,
            SimMatrix::opencalais(),
            fixed_depth_params(0.8, 0.25),
            ScoreVariant::Full,
            landmarks,
            n,
            cfg,
        );
        let gen_req = |rng: &mut SeededRng| Request {
            user: NodeId(rng.below(n as u64) as u32),
            topic: *rng.pick(&Topic::ALL[..4]),
            top_n: 1 + rng.below(n as u64) as usize,
        };
        let mut bits = Vec::new();
        let digest = |reply: Reply, bits: &mut Vec<u64>| -> Result<(), String> {
            match reply {
                Reply::Result(s) => {
                    bits.push(s.epoch);
                    bits.push(u64::from(s.cached));
                    for &(v, score) in s.recommendations.iter() {
                        bits.push(u64::from(v.0));
                        bits.push(score.to_bits());
                    }
                }
                Reply::Overloaded => bits.push(u64::MAX),
                Reply::Rejected(_) => {
                    return Err(format!("unexpected rejection ({})", case.repro()))
                }
            }
            Ok(())
        };
        for _ in 0..24u32 {
            match rng.below(10) {
                0..=4 => digest(svc.call(gen_req(&mut rng)), &mut bits)?,
                5 | 6 => {
                    let u = NodeId(rng.below(n as u64) as u32);
                    let v = NodeId(rng.below(n as u64) as u32);
                    if u != v {
                        let change = if rng.below(2) == 0 {
                            EdgeChange::insert(u, v, crate::gen::gen_topicset(&mut rng))
                        } else {
                            EdgeChange::remove(u, v, Default::default())
                        };
                        svc.record(change)
                            .map_err(|e| format!("record failed: {e} ({})", case.repro()))?;
                    }
                }
                7 => {
                    bits.push(svc.rotate());
                }
                8 => {
                    bits.push(svc.refresh() as u64);
                }
                // Submit burst past queue capacity: shed pattern is
                // part of the fingerprint too.
                _ => {
                    let reqs: Vec<Request> = (0..12).map(|_| gen_req(&mut rng)).collect();
                    let mut tickets = Vec::new();
                    for &req in &reqs {
                        match svc.submit(req, None) {
                            Ok(t) => tickets.push(t),
                            Err(_) => bits.push(u64::MAX),
                        }
                    }
                    while svc.pump() > 0 {}
                    for t in tickets {
                        digest(t.wait(), &mut bits)?;
                    }
                }
            }
        }
        Ok(bits)
    };

    // Force capture live (tracing below Full is inert by design), then
    // restore the caller's level whatever happens.
    let prev_level = fui_obs::level();
    fui_obs::set_level(fui_obs::Level::Full);
    let result = (|| {
        let mut baseline: Option<Vec<u64>> = None;
        for rate in [0.0, 0.5, 1.0] {
            fui_obs::trace::set_sample(rate);
            let bits = fingerprint()?;
            match &baseline {
                None => baseline = Some(bits),
                Some(base) if *base != bits => {
                    return Err(format!(
                        "replies diverged between FUI_TRACE_SAMPLE=0.0 and {rate} \
                         ({} vs {} fingerprint words, {})",
                        base.len(),
                        bits.len(),
                        case.repro()
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    })();
    fui_obs::trace::set_sample(0.0);
    fui_obs::set_level(prev_level);
    result
}

/// The HTTP frontend is a *transport*, not a second implementation:
/// the same seeded sequence of recommendations, follow/unfollow
/// churn, rotations, refreshes, epoch reads and deliberately invalid
/// requests driven through the [`fui_service::NetServer`] line
/// protocol and through the [`fui_net::HttpServer`] event loop (each
/// fronting an identically built [`fui_service::Service`]) must
/// produce **byte-identical** reply lines — epochs, node orderings,
/// shortest-round-trip `f64` score text, cached flags and error
/// strings — and every HTTP status must agree with the line reply's
/// class (`OK` ↔ 200, `ERR` ↔ 400). Ops run sequentially, so both
/// backends see the same state at every step and the comparison is
/// exact, not statistical. (The CI conformance matrix runs this at
/// `FUI_THREADS=1` and `FUI_THREADS=4`.)
pub fn check_http_matches_line_protocol(case: &GraphCase) -> Result<(), String> {
    use fui_net::{parse_response, HttpConfig, HttpServer};
    use fui_service::{NetConfig, NetServer, Service, ServiceConfig};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    let n = case.num_nodes;
    let cfg = ServiceConfig {
        max_batch: 4,
        queue_capacity: 64,
        cache_capacity: 64,
        cache_shards: 4,
        refresh_threshold: 0.02,
        ..ServiceConfig::default()
    };
    let params = fixed_depth_params(0.8, 0.25);
    let make = || {
        let g = case.graph();
        let lm: Vec<NodeId> = g.nodes().step_by(3).collect();
        Arc::new(Service::new(
            g,
            SimMatrix::opencalais(),
            params,
            ScoreVariant::Full,
            lm,
            n,
            cfg,
        ))
    };

    let line_server = NetServer::start(make(), "127.0.0.1:0", NetConfig::default())
        .map_err(|e| format!("line server: {e}"))?;
    let http_server = HttpServer::start(make(), "127.0.0.1:0", HttpConfig::default())
        .map_err(|e| format!("http server: {e}"))?;
    let line_stream =
        TcpStream::connect(line_server.local_addr()).map_err(|e| format!("line connect: {e}"))?;
    let mut line_writer = line_stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut line_reader = BufReader::new(line_stream);
    let mut http_stream =
        TcpStream::connect(http_server.local_addr()).map_err(|e| format!("http connect: {e}"))?;

    let mut ask_line = |cmd: &str| -> Result<String, String> {
        writeln!(line_writer, "{cmd}").map_err(|e| format!("line write: {e}"))?;
        let mut reply = String::new();
        line_reader
            .read_line(&mut reply)
            .map_err(|e| format!("line read: {e}"))?;
        Ok(reply.trim_end_matches('\n').to_owned())
    };
    let mut http_buf: Vec<u8> = Vec::new();
    let ask_http = |stream: &mut TcpStream, buf: &mut Vec<u8>, target: &str, post: bool| {
        let verb = if post { "POST" } else { "GET" };
        stream
            .write_all(format!("{verb} {target} HTTP/1.1\r\n\r\n").as_bytes())
            .map_err(|e| format!("http write: {e}"))?;
        let mut chunk = [0u8; 4096];
        loop {
            match parse_response(buf).map_err(|e| format!("http parse: {e}"))? {
                Some((resp, used)) => {
                    buf.drain(..used);
                    let body =
                        String::from_utf8(resp.body).map_err(|e| format!("http body utf8: {e}"))?;
                    return Ok((resp.status, body.trim_end_matches('\n').to_owned()));
                }
                None => {
                    let got = stream
                        .read(&mut chunk)
                        .map_err(|e| format!("http read: {e}"))?;
                    if got == 0 {
                        return Err("http server closed mid-sequence".to_owned());
                    }
                    buf.extend_from_slice(&chunk[..got]);
                }
            }
        }
    };

    let mut rng = SeededRng::new(case.seed.rotate_left(9));
    let topics = &Topic::ALL[..4];
    for step in 0..32u32 {
        // Build one op as (line command, HTTP target, is-POST). Every
        // value splices into both wire forms verbatim, including the
        // invalid ones — error strings must match byte for byte too.
        let (cmd, target, post) = match rng.below(12) {
            0..=4 => {
                let u = rng.below(n as u64);
                let t = rng.pick(topics).name();
                let k = 1 + rng.below(n as u64);
                (
                    format!("REC {u} {t} {k}"),
                    format!("/rec?user={u}&topic={t}&top_n={k}"),
                    false,
                )
            }
            5 => {
                // Unknown user: rejected at validation, same reason.
                let ghost = n as u64 + 7 + rng.below(50);
                (
                    format!("REC {ghost} technology 3"),
                    format!("/rec?user={ghost}&topic=technology&top_n=3"),
                    false,
                )
            }
            6 => {
                // Malformed topic and top_n: rejected at parse.
                let u = rng.below(n as u64);
                if rng.below(2) == 0 {
                    (
                        format!("REC {u} nonsense 3"),
                        format!("/rec?user={u}&topic=nonsense&top_n=3"),
                        false,
                    )
                } else {
                    (
                        format!("REC {u} technology zap"),
                        format!("/rec?user={u}&topic=technology&top_n=zap"),
                        false,
                    )
                }
            }
            7 | 8 if n >= 2 => {
                let f = rng.below(n as u64);
                let g = (f + 1 + rng.below(n as u64 - 1)) % n as u64;
                let mut t = String::from(rng.pick(topics).name());
                if rng.below(2) == 0 {
                    t.push(',');
                    t.push_str(rng.pick(topics).name());
                }
                if rng.below(3) == 0 {
                    (
                        format!("UNFOLLOW {f} {g}"),
                        format!("/unfollow?follower={f}&followee={g}"),
                        true,
                    )
                } else {
                    (
                        format!("FOLLOW {f} {g} {t}"),
                        format!("/follow?follower={f}&followee={g}&topics={t}"),
                        true,
                    )
                }
            }
            9 => ("ROTATE".to_owned(), "/rotate".to_owned(), true),
            10 => ("REFRESH".to_owned(), "/refresh".to_owned(), true),
            _ => ("EPOCH".to_owned(), "/epoch".to_owned(), false),
        };
        let line_reply = ask_line(&cmd)?;
        let (status, http_body) = ask_http(&mut http_stream, &mut http_buf, &target, post)?;
        if line_reply != http_body {
            return Err(format!(
                "step {step}: HTTP body diverged from line reply for {cmd:?}: \
                 {http_body:?} vs {line_reply:?} ({})",
                case.repro()
            ));
        }
        let want_status = if line_reply.starts_with("ERR") {
            400
        } else {
            200
        };
        if status != want_status {
            return Err(format!(
                "step {step}: HTTP status {status} disagrees with reply class of \
                 {line_reply:?} (want {want_status}, {})",
                case.repro()
            ));
        }
    }

    line_server.shutdown();
    http_server.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Preset};

    #[test]
    fn invariants_hold_on_a_seed_sweep() {
        for preset in Preset::ALL {
            for seed in 0..6u64 {
                let case = corpus::generate(preset, seed);
                for (name, r) in [
                    ("alpha", check_sigma_monotone_alpha(&case)),
                    ("beta", check_sigma_monotone_beta(&case)),
                    ("katz-edge", check_katz_monotone_edge_addition(&case)),
                    ("permutation", check_permutation_invariance(&case)),
                    ("pool", check_pool_width_invariance(&case, 4)),
                    ("workspace", check_workspace_reuse_matches_fresh(&case)),
                    ("service-cache", check_cached_matches_uncached(&case)),
                    ("service-sharded", check_sharded_matches_unsharded(&case)),
                    ("tracing", check_tracing_is_invisible(&case)),
                    ("http-vs-line", check_http_matches_line_protocol(&case)),
                ] {
                    r.unwrap_or_else(|e| panic!("{name} on {preset:?}/{seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn similarity_axioms_hold() {
        check_similarity_axioms().unwrap();
    }
}
