//! **fui-net** — the nonblocking event-loop HTTP/1.1 ingress for the
//! serving layer.
//!
//! The line protocol in `fui-service::net` is thread-per-connection:
//! fine for `nc`, hopeless for the ROADMAP's "heavy traffic from
//! millions of users" regime where tens of thousands of keep-alive
//! connections each carry a trickle of requests. This crate is the
//! real ingress path: one event-loop thread multiplexes every
//! connection over `epoll` readiness notifications (declared directly
//! against the libc that `std` already links — the container is
//! offline, so no `mio`/`libc` crates), with per-connection state
//! machines, edge-triggered read/write buffers, HTTP/1.1 keep-alive
//! and pipelining.
//!
//! * [`sys`] — the readiness poller: `epoll` on Linux, a degenerate
//!   always-ready fallback elsewhere;
//! * [`http`] — incremental, allocation-bounded request/response
//!   parsing with typed [`HttpError`]s (every malformed input answers
//!   `400`, never a panic or an unbounded allocation);
//! * [`conn`] — the per-connection state machine: buffered
//!   edge-triggered reads, a FIFO of response slots so pipelined
//!   requests answer in arrival order, buffered writes;
//! * [`server`] — the [`HttpServer`] event loop, generic over the
//!   same [`fui_service::Backend`] as the line protocol.
//!
//! Route handling reuses `fui_service::net::execute_control` and
//! `render_reply`, so an HTTP body is byte-identical to the
//! line-protocol reply for the same operation — the testkit invariant
//! `check_http_matches_line_protocol` holds by construction, not by
//! parallel maintenance. `GET /rec` goes through the same
//! micro-batching submission queue; the event loop redeems tickets
//! nonblockingly ([`fui_service::Ticket::poll`]) so one slow query
//! never parks the thread that every other connection shares.
//!
//! Shed attribution reaches the status line: a queue-full or
//! missed-deadline shed answers `429 Too Many Requests`, a shed whose
//! in-flight window overlapped a snapshot rotation or landmark
//! refresh (the loop-stalling control operations) answers
//! `503 Service Unavailable`. Bodies stay `OVERLOADED` in both cases
//! — the transport carries the cause, the payload stays protocol-
//! identical.

#![warn(missing_docs)]

pub mod conn;
pub mod http;
pub mod server;
pub mod sys;

pub use http::{
    parse_request, parse_response, query_param, write_response, HttpError, HttpRequest,
    HttpResponse, Method, MAX_BODY, MAX_HEADERS, MAX_HEADER_BYTES, MAX_REQUEST_LINE,
};
pub use server::{HttpConfig, HttpServer};
