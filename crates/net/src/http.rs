//! Incremental, allocation-bounded HTTP/1.1 parsing.
//!
//! [`parse_request`] is a pure function over the connection's read
//! buffer: it either yields one complete request plus the number of
//! bytes it consumed, reports that more bytes are needed, or fails
//! with a typed [`HttpError`]. Because it is pure and restartable, a
//! request split across any read boundary parses identically to the
//! same bytes arriving at once — the fuzz suite feeds byte-at-a-time
//! prefixes to prove it.
//!
//! Robustness contract (enforced by `tests/http_fuzz.rs`):
//!
//! * every malformed input yields a typed error (which the server
//!   answers with `400`), never a panic;
//! * no allocation is ever sized from attacker-controlled numbers: a
//!   `Content-Length` above [`MAX_BODY`] is rejected *before* any
//!   body byte is buffered, and the request line / header section
//!   have hard byte ceilings ([`MAX_REQUEST_LINE`],
//!   [`MAX_HEADER_BYTES`]) past which the connection errors rather
//!   than buffer further.
//!
//! The subset is deliberately small: `GET`/`POST`, `HTTP/1.0`/`1.1`,
//! `Content-Length` framing only (a `Transfer-Encoding` header is a
//! typed rejection), no percent-decoding of targets (the wire
//! protocol's tokens are plain ASCII identifiers). Bare-`LF` line
//! endings are tolerated on input, as HTTP recipients may.

use std::fmt;

/// Hard ceiling on the request-line length, bytes (including CRLF).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Hard ceiling on the header section, bytes (after the request line).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard ceiling on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Hard ceiling on a request body, bytes.
pub const MAX_BODY: usize = 64 * 1024;
/// Hard ceiling on a *response* body (client side; `STATS` is big).
pub const MAX_RESPONSE_BODY: usize = 8 * 1024 * 1024;

/// Typed parse failure; the server answers `400` with the rendered
/// reason and closes the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// No line terminator within [`MAX_REQUEST_LINE`] bytes.
    RequestLineTooLong,
    /// The request line is not `METHOD SP target SP HTTP/1.x`.
    MalformedRequestLine,
    /// A syntactically valid but unsupported method token.
    BadMethod(String),
    /// A version other than `HTTP/1.0` or `HTTP/1.1`.
    BadVersion(String),
    /// The target does not start with `/` or contains junk.
    BadTarget,
    /// The header section exceeds [`MAX_HEADER_BYTES`].
    HeaderSectionTooLarge,
    /// More than [`MAX_HEADERS`] header fields.
    TooManyHeaders,
    /// A header line without a `name: value` shape or with control
    /// bytes in it.
    MalformedHeader,
    /// `Content-Length` is not a plain decimal, or two copies
    /// disagree.
    BadContentLength,
    /// `Content-Length` exceeds [`MAX_BODY`] (or
    /// [`MAX_RESPONSE_BODY`] client-side); reported before any body
    /// byte is buffered.
    BodyTooLarge(u64),
    /// A `Transfer-Encoding` header (chunked bodies are out of
    /// scope).
    UnsupportedTransferEncoding,
    /// The peer closed the connection mid-request.
    TruncatedRequest,
    /// The status line is not `HTTP/1.x NNN reason` (client side).
    MalformedStatusLine,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::RequestLineTooLong => write!(f, "request line exceeds {MAX_REQUEST_LINE}B"),
            HttpError::MalformedRequestLine => write!(f, "malformed request line"),
            HttpError::BadMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::BadVersion(v) => write!(f, "unsupported version {v:?}"),
            HttpError::BadTarget => write!(f, "bad request target"),
            HttpError::HeaderSectionTooLarge => {
                write!(f, "header section exceeds {MAX_HEADER_BYTES}B")
            }
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::MalformedHeader => write!(f, "malformed header"),
            HttpError::BadContentLength => write!(f, "bad content-length"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n}B exceeds limit"),
            HttpError::UnsupportedTransferEncoding => write!(f, "transfer-encoding unsupported"),
            HttpError::TruncatedRequest => write!(f, "truncated request"),
            HttpError::MalformedStatusLine => write!(f, "malformed status line"),
        }
    }
}

/// Supported request methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl Method {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Path component of the target (before `?`).
    pub path: String,
    /// Raw query string (after `?`, empty if absent).
    pub query: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Request body (bounded by [`MAX_BODY`]).
    pub body: Vec<u8>,
}

/// One parsed response (client side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Response body.
    pub body: Vec<u8>,
}

/// Truncates a token for inclusion in an error (errors must never
/// echo unbounded attacker input).
fn clip(s: &str) -> String {
    const LIMIT: usize = 32;
    if s.len() <= LIMIT {
        s.to_owned()
    } else {
        let mut end = LIMIT;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Finds the next line (terminated by `\n`, optional `\r` stripped)
/// starting at `from`. Returns `(line, next_offset)`.
fn take_line(buf: &[u8], from: usize) -> Option<(&[u8], usize)> {
    let nl = buf[from..].iter().position(|&b| b == b'\n')?;
    let mut line = &buf[from..from + nl];
    if let [head @ .., b'\r'] = line {
        line = head;
    }
    Some((line, from + nl + 1))
}

fn is_tchar(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Shared header-section scan: returns
/// `(content_length, connection_token, end_offset)` or `None` if the
/// section is still incomplete. `max_body` parameterises the bound so
/// responses (client side) may carry bigger payloads than requests.
#[allow(clippy::type_complexity)]
fn scan_headers(
    buf: &[u8],
    start: usize,
    max_body: usize,
) -> Result<Option<(usize, Option<String>, usize)>, HttpError> {
    let mut at = start;
    let mut count = 0usize;
    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    loop {
        if at - start > MAX_HEADER_BYTES {
            return Err(HttpError::HeaderSectionTooLarge);
        }
        let Some((line, next)) = take_line(buf, at) else {
            if buf.len() - start > MAX_HEADER_BYTES {
                return Err(HttpError::HeaderSectionTooLarge);
            }
            return Ok(None);
        };
        if next - start > MAX_HEADER_BYTES && !line.is_empty() {
            return Err(HttpError::HeaderSectionTooLarge);
        }
        at = next;
        if line.is_empty() {
            return Ok(Some((content_length.unwrap_or(0), connection, at)));
        }
        count += 1;
        if count > MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::MalformedHeader)?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_tchar(b)) {
            return Err(HttpError::MalformedHeader);
        }
        let value = &rest[1..];
        if !value
            .iter()
            .all(|&b| b == b'\t' || (0x20..0x7f).contains(&b))
        {
            return Err(HttpError::MalformedHeader);
        }
        let value = std::str::from_utf8(value)
            .map_err(|_| HttpError::MalformedHeader)?
            .trim();
        if name.eq_ignore_ascii_case(b"content-length") {
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadContentLength);
            }
            // Parse into u64 first so a 30-digit length reports
            // BodyTooLarge (with the claimed size) rather than a
            // generic parse failure — and never allocates.
            let n: u64 = value.parse().map_err(|_| HttpError::BadContentLength)?;
            if n > max_body as u64 {
                return Err(HttpError::BodyTooLarge(n));
            }
            let n = n as usize;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(HttpError::BadContentLength);
                }
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case(b"connection") {
            connection = Some(value.to_ascii_lowercase());
        }
    }
}

fn keep_alive_for(version: &str, connection: Option<&str>) -> bool {
    match connection {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => version == "HTTP/1.1",
    }
}

/// Tries to parse one complete request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a full request; the caller
///   drops `consumed` bytes from the buffer (pipelined requests
///   follow immediately after).
/// * `Ok(None)` — incomplete; read more and call again.
/// * `Err(_)` — protocol violation; answer `400` and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let Some((line, headers_start)) = take_line(buf, 0) else {
        if buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        return Ok(None);
    };
    if headers_start > MAX_REQUEST_LINE {
        return Err(HttpError::RequestLineTooLong);
    }
    if !line.iter().all(|&b| (0x20..0x7f).contains(&b)) {
        return Err(HttpError::MalformedRequestLine);
    }
    let line = std::str::from_utf8(line).map_err(|_| HttpError::MalformedRequestLine)?;
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::MalformedRequestLine);
    };
    if method.is_empty() || target.is_empty() || version.is_empty() {
        return Err(HttpError::MalformedRequestLine);
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        m if m.bytes().all(is_tchar) => return Err(HttpError::BadMethod(clip(m))),
        _ => return Err(HttpError::MalformedRequestLine),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadVersion(clip(version)));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadTarget);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let Some((content_length, connection, body_start)) =
        scan_headers(buf, headers_start, MAX_BODY)?
    else {
        return Ok(None);
    };
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        HttpRequest {
            method,
            path: path.to_owned(),
            query: query.to_owned(),
            keep_alive: keep_alive_for(version, connection.as_deref()),
            body: buf[body_start..total].to_vec(),
        },
        total,
    )))
}

/// Tries to parse one complete response from the front of `buf`
/// (client side; same incremental contract as [`parse_request`]).
pub fn parse_response(buf: &[u8]) -> Result<Option<(HttpResponse, usize)>, HttpError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let Some((line, headers_start)) = take_line(buf, 0) else {
        if buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::MalformedStatusLine);
        }
        return Ok(None);
    };
    let line = std::str::from_utf8(line).map_err(|_| HttpError::MalformedStatusLine)?;
    let mut parts = line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(HttpError::MalformedStatusLine);
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadVersion(clip(version)));
    }
    let status: u16 = code.parse().map_err(|_| HttpError::MalformedStatusLine)?;
    if !(100..600).contains(&status) {
        return Err(HttpError::MalformedStatusLine);
    }

    let Some((content_length, connection, body_start)) =
        scan_headers(buf, headers_start, MAX_RESPONSE_BODY)?
    else {
        return Ok(None);
    };
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        HttpResponse {
            status,
            keep_alive: keep_alive_for(version, connection.as_deref()),
            body: buf[body_start..total].to_vec(),
        },
        total,
    )))
}

/// Looks up the first `key=value` pair in a raw query string.
/// `Some("")` for a bare `key` with no `=`. No percent-decoding: the
/// wire tokens are plain ASCII and a request target can never contain
/// whitespace (the request line would not have parsed), so values
/// splice safely into line-protocol commands.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        };
        (k == key).then_some(v)
    })
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialises one response onto `out`. The body is carried verbatim
/// (the server passes the line-protocol reply plus `\n`, keeping the
/// payload bit-identical across frontends).
pub fn write_response(out: &mut Vec<u8>, status: u16, body: &str, keep_alive: bool) {
    use std::io::Write;
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.extend_from_slice(body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(s: &str) -> HttpRequest {
        let (r, consumed) = parse_request(s.as_bytes())
            .expect("parse ok")
            .expect("complete");
        assert_eq!(consumed, s.len());
        r
    }

    #[test]
    fn parses_a_minimal_get() {
        let r = req("GET /rec?user=3&topic=music HTTP/1.1\r\nHost: fui\r\n\r\n");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/rec");
        assert_eq!(r.query, "user=3&topic=music");
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let r = req("POST /rotate HTTP/1.1\r\nConnection: close\r\nContent-Length: 3\r\n\r\nabc");
        assert_eq!(r.method, Method::Post);
        assert!(!r.keep_alive);
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn http_10_defaults_to_close() {
        assert!(!req("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(req("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn pipelined_requests_consume_exactly() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, used) = parse_request(wire).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, used2) = parse_request(&wire[used..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn incomplete_asks_for_more() {
        let wire = b"GET /rec HTTP/1.1\r\nHost: fui\r\n\r\n";
        for cut in 0..wire.len() {
            assert_eq!(
                parse_request(&wire[..cut]).expect("prefix never errors"),
                None,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_content_length_rejected_before_body() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 999999999999999\r\n\r\n";
        assert_eq!(
            parse_request(wire),
            Err(HttpError::BodyTooLarge(999_999_999_999_999))
        );
    }

    #[test]
    fn query_params_resolve_first_match() {
        assert_eq!(query_param("user=3&topic=music", "user"), Some("3"));
        assert_eq!(query_param("user=3&topic=music", "topic"), Some("music"));
        assert_eq!(query_param("user=3&user=4", "user"), Some("3"));
        assert_eq!(query_param("flag&x=1", "flag"), Some(""));
        assert_eq!(query_param("x=1", "missing"), None);
    }

    #[test]
    fn response_round_trip() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK REC 1 0 2:0.5\n", true);
        let (resp, used) = parse_response(&out).unwrap().unwrap();
        assert_eq!(used, out.len());
        assert_eq!(resp.status, 200);
        assert!(resp.keep_alive);
        assert_eq!(resp.body, b"OK REC 1 0 2:0.5\n");
    }
}
