//! Readiness polling.
//!
//! On Linux this is `epoll` called through our own `extern "C"`
//! declarations: the process already links libc via `std`, so the
//! offline container needs no external crate to reach the syscalls.
//! Sockets register **edge-triggered** (`EPOLLET`) for read *and*
//! write interest once, at accept time — the event loop then drains
//! every readiness edge to `WouldBlock`, which is the contract that
//! makes one `epoll_ctl` per connection lifetime sufficient.
//!
//! On other platforms the [`Poller`] degrades to an "always ready"
//! stub: `wait` sleeps a millisecond and reports every registered
//! token readable and writable. Nonblocking sockets make that
//! correct (spurious readiness just yields `WouldBlock`), merely
//! busier — the production target, like CI, is Linux.

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the file descriptor registered with.
    pub token: u64,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the connection is dead.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    // The kernel ABI packs epoll_event on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Capacity of the per-`wait` event batch.
    const WAIT_BATCH: usize = 256;

    /// An `epoll` instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        /// Registers `fd` edge-triggered for read + write interest.
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Removes `fd` from the interest set (best effort).
        pub fn deregister(&self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // Pre-2.6.9 kernels required a non-null event for DEL;
            // passing one is harmless everywhere. Close of the fd
            // also deregisters implicitly, so errors are ignorable.
            // SAFETY: as in `register`.
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Blocks up to `timeout` for readiness; fills `out`.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let ms = c_int::try_from(timeout.as_millis())
                .unwrap_or(c_int::MAX)
                .max(0);
            // SAFETY: `buf` is valid for WAIT_BATCH entries for the
            // duration of the call.
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for e in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let events = e.events;
                let data = e.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & EPOLLOUT != 0,
                    closed: events & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own the descriptor.
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Always-ready fallback for non-Linux hosts.
    pub struct Poller {
        tokens: Mutex<Vec<(RawFd, u64)>>,
    }

    impl Poller {
        /// Creates the fallback poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                tokens: Mutex::new(Vec::new()),
            })
        }

        /// Remembers `fd` so `wait` reports it ready.
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.tokens.lock().expect("poller lock").push((fd, token));
            Ok(())
        }

        /// Forgets `fd`.
        pub fn deregister(&self, fd: RawFd) {
            self.tokens
                .lock()
                .expect("poller lock")
                .retain(|&(f, _)| f != fd);
        }

        /// Sleeps briefly, then reports every registered fd ready.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
            for &(_, token) in self.tokens.lock().expect("poller lock").iter() {
                out.push(Event {
                    token,
                    readable: true,
                    writable: true,
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Poller")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let poller = Poller::new().expect("poller");
        poller.register(listener.as_raw_fd(), 7).expect("register");

        // Idle wait times out with no events (linux); the fallback
        // may report spurious readiness, which accept() tolerates.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(5))
            .expect("wait");

        let mut client = TcpStream::connect(addr).expect("connect");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            poller
                .wait(&mut events, Duration::from_millis(50))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                if let Ok((s, _)) = listener.accept() {
                    break s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no accept readiness within 5s"
            );
        };
        accepted.set_nonblocking(true).expect("nonblocking");
        poller.register(accepted.as_raw_fd(), 9).expect("register");

        client.write_all(b"ping").expect("write");
        let got = loop {
            poller
                .wait(&mut events, Duration::from_millis(50))
                .expect("wait");
            if events.iter().any(|e| e.token == 9 && e.readable) {
                let mut buf = [0u8; 8];
                let mut s = &accepted;
                match s.read(&mut buf) {
                    Ok(n) => break buf[..n].to_vec(),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("read: {e}"),
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no read readiness within 5s"
            );
        };
        assert_eq!(got, b"ping");
        poller.deregister(accepted.as_raw_fd());
    }
}
