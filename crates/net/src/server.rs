//! The event-loop HTTP server.
//!
//! One loop thread multiplexes the listener plus every connection
//! over [`crate::sys::Poller`] readiness; a companion pump thread
//! drives the backend's micro-batch window exactly like the line
//! protocol's. `GET /rec` submits into the batcher and parks a
//! `Slot::Waiting` in the connection's FIFO; every loop tick polls
//! the head tickets nonblockingly and ships resolved responses, so
//! pipelining holds and the loop never blocks on a single query.
//!
//! # Endpoints
//!
//! | endpoint | verb | body (identical to the line protocol) |
//! |---|---|---|
//! | `/rec?user=&topic=&top_n=` | GET | `OK REC <epoch> <cached> <node>:<score>...` |
//! | `/follow?follower=&followee=&topics=` | POST | `OK FOLLOW` |
//! | `/unfollow?follower=&followee=` | POST | `OK UNFOLLOW` |
//! | `/rotate` | POST | `OK ROTATE <epoch>` |
//! | `/refresh` | POST | `OK REFRESH <n>` |
//! | `/epoch` | GET | `OK EPOCH <e>` |
//! | `/stats` \| `/slo` \| `/trace?n=` \| `/shards` | GET | as the line verbs |
//! | `/health` | GET | `OK HEALTH <epoch>` (HTTP-only liveness) |
//!
//! Status mapping: `OK` bodies answer `200`, `ERR` bodies `400`
//! (unknown paths `404`, wrong methods `405`), sheds answer `429`
//! (admission control: queue full or deadline missed) or `503` (the
//! shed's in-flight window overlapped a rotation/refresh stall).
//! Bodies are byte-identical to the line protocol in every case the
//! line protocol can express — both frontends render through
//! `fui_service::net::{execute_control, render_reply}`.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fui_obs::{counter, gauge, Counter, Gauge};
use fui_service::net::{execute_control, parse_node, parse_topic, render_reply};
use fui_service::{Backend, Reply, Request};

use crate::conn::{Conn, PendingRec, ReadOutcome, Slot};
use crate::http::{self, HttpRequest, Method};
use crate::sys::{Event, Poller};

/// Token reserved for the listener.
const LISTENER_TOKEN: u64 = 0;

/// Event-loop tuning.
#[derive(Clone, Copy, Debug)]
pub struct HttpConfig {
    /// Micro-batch coalescing window (pump cadence when idle).
    pub window: Duration,
    /// Per-request deadline, measured from submission.
    pub deadline: Duration,
    /// Accept ceiling; connections beyond it are closed immediately.
    pub max_conns: usize,
    /// Unanswered requests per connection before reads pause.
    pub max_pipeline: usize,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            window: Duration::from_millis(1),
            deadline: Duration::from_secs(2),
            max_conns: 4096,
            max_pipeline: 1024,
        }
    }
}

/// Resolved-once handles for every `net.*` metric (the loop never
/// takes the registry's name lock per event).
pub(crate) struct NetMetrics {
    pub(crate) accepts: Counter,
    pub(crate) accept_overflow: Counter,
    pub(crate) conns: Gauge,
    pub(crate) read_bytes: Counter,
    pub(crate) write_bytes: Counter,
    pub(crate) parse_errors: Counter,
    pub(crate) keepalive_reuse: Counter,
    pub(crate) requests: Counter,
    pub(crate) status_ok: Counter,
    pub(crate) status_bad_request: Counter,
    pub(crate) status_not_found: Counter,
    pub(crate) shed_overload: Counter,
    pub(crate) shed_rotation: Counter,
}

impl NetMetrics {
    fn new() -> NetMetrics {
        NetMetrics {
            accepts: counter("net.accepts"),
            accept_overflow: counter("net.accept_overflow"),
            conns: gauge("net.conns"),
            read_bytes: counter("net.read_bytes"),
            write_bytes: counter("net.write_bytes"),
            parse_errors: counter("net.parse_errors"),
            keepalive_reuse: counter("net.keepalive_reuse"),
            requests: counter("net.http.requests"),
            status_ok: counter("net.http.ok"),
            status_bad_request: counter("net.http.bad_request"),
            status_not_found: counter("net.http.not_found"),
            shed_overload: counter("net.http.shed_overload"),
            shed_rotation: counter("net.http.shed_rotation"),
        }
    }
}

/// A running event loop + pump pair; shut down explicitly in tests.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event_loop: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the loop and
    /// pump threads.
    pub fn start<B: Backend>(
        service: Arc<B>,
        addr: &str,
        cfg: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let event_loop = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fui-http-loop".into())
                .spawn(move || run_loop(listener, &*service, cfg, &stop))?
        };
        let pump = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fui-http-pump".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        if service.pump() == 0 {
                            std::thread::park_timeout(cfg.window);
                        }
                    }
                    // Resolve anything still queued so no ticket hangs.
                    while service.pump() > 0 {}
                })?
        };
        Ok(HttpServer {
            addr: local,
            stop,
            event_loop: Some(event_loop),
            pump: Some(pump),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop, closes every connection and joins the threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the poller out of its wait.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

fn run_loop<B: Backend>(listener: TcpListener, service: &B, cfg: HttpConfig, stop: &AtomicBool) {
    let metrics = NetMetrics::new();
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    if poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN)
        .is_err()
    {
        return;
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Event> = Vec::with_capacity(256);
    // Bumped by every rotate/refresh; sheds that straddle a bump
    // answer 503 (rotation stall), others 429.
    let mut stall_stamp: u64 = 0;

    while !stop.load(Ordering::SeqCst) {
        let any_waiting = conns.values().any(Conn::has_waiting);
        let timeout = if any_waiting {
            cfg.window
        } else {
            Duration::from_millis(20)
        };
        if poller.wait(&mut events, timeout).is_err() {
            break;
        }

        let woken: Vec<u64> = events
            .iter()
            .filter(|e| e.token != LISTENER_TOKEN)
            .map(|e| e.token)
            .collect();
        let accept_ready = events
            .iter()
            .any(|e| e.token == LISTENER_TOKEN && e.readable);
        for e in events.iter().filter(|e| e.closed) {
            if let Some(c) = conns.get_mut(&e.token) {
                c.dead = true;
            }
        }

        if accept_ready {
            accept_all(
                &listener,
                &poller,
                &mut conns,
                &mut next_token,
                &cfg,
                &metrics,
            );
        }

        // Explicitly woken connections first, then a tick pass over
        // everything with in-flight tickets or paused reads. Visiting
        // a connection twice is harmless (reads hit WouldBlock).
        for token in woken {
            if let Some(c) = conns.get_mut(&token) {
                service_conn(c, service, &cfg, &metrics, &mut stall_stamp);
            }
        }
        for c in conns.values_mut() {
            if c.dead {
                continue;
            }
            service_conn(c, service, &cfg, &metrics, &mut stall_stamp);
        }

        conns.retain(|_, c| {
            if c.dead {
                poller.deregister(c.stream.as_raw_fd());
            }
            !c.dead
        });
        metrics.conns.set(conns.len() as f64);
    }
    for (_, c) in conns.drain() {
        poller.deregister(c.stream.as_raw_fd());
    }
    metrics.conns.set(0.0);
}

fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    cfg: &HttpConfig,
    metrics: &NetMetrics,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= cfg.max_conns {
                    metrics.accept_overflow.incr();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller.register(stream.as_raw_fd(), token).is_err() {
                    continue;
                }
                metrics.accepts.incr();
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    metrics.conns.set(conns.len() as f64);
}

/// One full service pass over a connection: read, parse/route,
/// resolve tickets, flush.
fn service_conn<B: Backend>(
    conn: &mut Conn,
    service: &B,
    cfg: &HttpConfig,
    metrics: &NetMetrics,
    stall_stamp: &mut u64,
) {
    let outcome = conn.fill(metrics, cfg.max_pipeline);
    if outcome == ReadOutcome::Err {
        conn.dead = true;
        return;
    }
    conn.parse_requests(metrics, |req| {
        route(req, service, cfg, metrics, stall_stamp)
    });
    if conn.saw_eof() && !conn.closing && conn.unparsed() > 0 {
        // The peer quit mid-request: still answer a typed 400 before
        // closing, so truncation is observable, never silent.
        conn.fail_request(metrics, &http::HttpError::TruncatedRequest);
    }
    resolve_tickets(conn, metrics, *stall_stamp);
    conn.flush(metrics);
}

/// Polls the FIFO head while tickets resolve, rendering each reply
/// with the shared line-protocol renderer.
fn resolve_tickets(conn: &mut Conn, metrics: &NetMetrics, stall_stamp: u64) {
    while let Some(Slot::Waiting(pending)) = conn.slots.front_mut() {
        let ticket = pending
            .ticket
            .take()
            .expect("ticket present until resolved");
        let (reply, keep_alive, stamp) = match ticket.poll() {
            Err(ticket) => {
                pending.ticket = Some(ticket);
                break;
            }
            Ok(reply) => (reply, pending.keep_alive, pending.stall_stamp),
        };
        let status = match &reply {
            Reply::Result(_) => {
                metrics.status_ok.incr();
                200
            }
            Reply::Rejected(_) => {
                metrics.status_bad_request.incr();
                400
            }
            Reply::Overloaded => {
                if stamp != stall_stamp {
                    metrics.shed_rotation.incr();
                    503
                } else {
                    metrics.shed_overload.incr();
                    429
                }
            }
        };
        let body = format!("{}\n", render_reply(&reply));
        let mut bytes = Vec::new();
        http::write_response(&mut bytes, status, &body, keep_alive);
        *conn.slots.front_mut().expect("front still present") = Slot::Done(bytes);
    }
}

/// Renders a finished control response as a slot.
fn done(metrics: &NetMetrics, status: u16, body: String, keep_alive: bool) -> Slot {
    match status {
        200 => metrics.status_ok.incr(),
        400 => metrics.status_bad_request.incr(),
        404 | 405 => metrics.status_not_found.incr(),
        429 => metrics.shed_overload.incr(),
        _ => {}
    }
    let mut bytes = Vec::new();
    http::write_response(&mut bytes, status, &body, keep_alive);
    Slot::Done(bytes)
}

/// Routes one parsed request. Control verbs run synchronously through
/// `execute_control` (the line protocol's own dispatch);
/// `GET /rec` submits into the batcher and returns a waiting slot.
fn route<B: Backend>(
    req: &HttpRequest,
    service: &B,
    cfg: &HttpConfig,
    metrics: &NetMetrics,
    stall_stamp: &mut u64,
) -> Slot {
    let keep = req.keep_alive;
    let q = req.query.as_str();
    // A control verb built from query tokens: the request line cannot
    // contain whitespace (it would not have parsed), so raw values
    // splice into the line protocol without any escaping ambiguity.
    let control = |line: String| -> (u16, String) {
        match execute_control(&line, service) {
            Ok(body) => (200, format!("{body}\n")),
            Err(e) => (400, format!("ERR {e}\n")),
        }
    };

    let (status, body) = match (req.method, req.path.as_str()) {
        (Method::Get, "/rec") => {
            let user = match parse_node(http::query_param(q, "user")) {
                Ok(u) => u,
                Err(e) => return done(metrics, 400, format!("ERR {e}\n"), keep),
            };
            let topic = match parse_topic(http::query_param(q, "topic")) {
                Ok(t) => t,
                Err(e) => return done(metrics, 400, format!("ERR {e}\n"), keep),
            };
            let top_n = match http::query_param(q, "top_n") {
                Some(s) => match s.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => return done(metrics, 400, format!("ERR bad top_n {s:?}\n"), keep),
                },
                None => 10,
            };
            let request = Request { user, topic, top_n };
            let deadline = Instant::now() + cfg.deadline;
            return match service.submit(request, Some(deadline)) {
                Ok(ticket) => Slot::Waiting(PendingRec {
                    ticket: Some(ticket),
                    keep_alive: keep,
                    stall_stamp: *stall_stamp,
                    submitted_at: Instant::now(),
                }),
                // Admission control refused at submit: queue full.
                Err(_) => done(metrics, 429, "OVERLOADED\n".to_owned(), keep),
            };
        }
        (Method::Post, "/follow") => {
            let (f, g, t) = (
                http::query_param(q, "follower"),
                http::query_param(q, "followee"),
                http::query_param(q, "topics"),
            );
            match (f, g, t) {
                (Some(f), Some(g), Some(t)) => control(format!("FOLLOW {f} {g} {t}")),
                _ => control("FOLLOW".to_owned()),
            }
        }
        (Method::Post, "/unfollow") => {
            match (
                http::query_param(q, "follower"),
                http::query_param(q, "followee"),
            ) {
                (Some(f), Some(g)) => control(format!("UNFOLLOW {f} {g}")),
                _ => control("UNFOLLOW".to_owned()),
            }
        }
        (Method::Post, "/rotate") => {
            *stall_stamp += 1;
            control("ROTATE".to_owned())
        }
        (Method::Post, "/refresh") => {
            *stall_stamp += 1;
            control("REFRESH".to_owned())
        }
        (Method::Get, "/epoch") => control("EPOCH".to_owned()),
        (Method::Get, "/stats") => control("STATS".to_owned()),
        (Method::Get, "/slo") => control("SLO".to_owned()),
        (Method::Get, "/shards") => control("SHARDS".to_owned()),
        (Method::Get, "/trace") => match http::query_param(q, "n") {
            Some(n) => control(format!("TRACE {n}")),
            None => control("TRACE".to_owned()),
        },
        (Method::Get, "/health") => (200, format!("OK HEALTH {}\n", service.epoch())),
        (
            _,
            "/rec" | "/follow" | "/unfollow" | "/rotate" | "/refresh" | "/epoch" | "/stats"
            | "/slo" | "/shards" | "/trace" | "/health",
        ) => (
            405,
            format!(
                "ERR method {} not allowed for {}\n",
                req.method.as_str(),
                req.path
            ),
        ),
        (_, path) => (404, format!("ERR unknown path {path:?}\n")),
    };
    done(metrics, status, body, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{ScoreParams, ScoreVariant};
    use fui_graph::{GraphBuilder, NodeId};
    use fui_service::{Service, ServiceConfig};
    use fui_taxonomy::{SimMatrix, Topic, TopicSet};
    use std::io::{Read, Write};

    fn tiny_service(queue_capacity: usize) -> Arc<Service> {
        let n = 40u32;
        let mut b = GraphBuilder::with_capacity(n as usize, n as usize * 3);
        for u in 0..n {
            let mut labels = TopicSet::empty();
            labels.insert(Topic::ALL[u as usize % Topic::ALL.len()]);
            b.add_node(labels);
        }
        for u in 0..n {
            for k in [1u32, 7, 13] {
                let mut labels = TopicSet::empty();
                labels.insert(Topic::ALL[(u + k) as usize % Topic::ALL.len()]);
                b.add_edge(NodeId(u), NodeId((u + k) % n), labels);
            }
        }
        let graph = b.build();
        let landmarks: Vec<NodeId> = graph.nodes().filter(|u| u.0 % 5 == 0).collect();
        Arc::new(Service::new(
            graph,
            SimMatrix::opencalais(),
            ScoreParams::default(),
            ScoreVariant::Full,
            landmarks,
            50,
            ServiceConfig {
                queue_capacity,
                ..ServiceConfig::default()
            },
        ))
    }

    fn send_and_read(stream: &mut TcpStream, req: &str) -> (u16, String) {
        stream.write_all(req.as_bytes()).expect("write");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match http::parse_response(&buf) {
                Ok(Some((resp, used))) => {
                    buf.drain(..used);
                    return (
                        resp.status,
                        String::from_utf8(resp.body).expect("utf8 body"),
                    );
                }
                Ok(None) => {}
                Err(e) => panic!("bad response: {e}"),
            }
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed early; buffered {buf:?}");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn serves_rec_and_control_over_keepalive() {
        let svc = tiny_service(256);
        let server = HttpServer::start(svc, "127.0.0.1:0", HttpConfig::default()).expect("start");
        let mut c = TcpStream::connect(server.local_addr()).expect("connect");

        let (code, body) = send_and_read(&mut c, "GET /health HTTP/1.1\r\nHost: f\r\n\r\n");
        assert_eq!(code, 200);
        assert!(body.starts_with("OK HEALTH "), "{body}");

        let (code, body) = send_and_read(
            &mut c,
            "GET /rec?user=3&topic=sports HTTP/1.1\r\nHost: f\r\n\r\n",
        );
        assert_eq!(code, 200);
        assert!(body.starts_with("OK REC "), "{body}");

        let (code, body) = send_and_read(
            &mut c,
            "POST /follow?follower=1&followee=2&topics=sports HTTP/1.1\r\nHost: f\r\n\r\n",
        );
        assert_eq!(code, 200);
        assert_eq!(body, "OK FOLLOW\n");

        let (code, body) = send_and_read(&mut c, "POST /rotate HTTP/1.1\r\nHost: f\r\n\r\n");
        assert_eq!(code, 200);
        assert!(body.starts_with("OK ROTATE "), "{body}");

        let (code, body) = send_and_read(
            &mut c,
            "GET /rec?user=9999&topic=sports HTTP/1.1\r\nHost: f\r\n\r\n",
        );
        assert_eq!(code, 400);
        assert!(body.starts_with("ERR unknown user"), "{body}");

        let (code, body) = send_and_read(&mut c, "GET /nope HTTP/1.1\r\nHost: f\r\n\r\n");
        assert_eq!(code, 404);
        assert!(body.starts_with("ERR unknown path"), "{body}");

        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let svc = tiny_service(256);
        let server = HttpServer::start(svc, "127.0.0.1:0", HttpConfig::default()).expect("start");
        let mut c = TcpStream::connect(server.local_addr()).expect("connect");

        // Two recs and an epoch, written back-to-back before any read.
        let wire = "GET /rec?user=1&topic=sports HTTP/1.1\r\nHost: f\r\n\r\n\
                    GET /rec?user=2&topic=technology HTTP/1.1\r\nHost: f\r\n\r\n\
                    GET /epoch HTTP/1.1\r\nHost: f\r\n\r\n";
        c.write_all(wire.as_bytes()).expect("write");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut bodies = Vec::new();
        while bodies.len() < 3 {
            match http::parse_response(&buf) {
                Ok(Some((resp, used))) => {
                    buf.drain(..used);
                    assert_eq!(resp.status, 200);
                    bodies.push(String::from_utf8(resp.body).expect("utf8"));
                }
                Ok(None) => {
                    let n = c.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed early");
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => panic!("bad response: {e}"),
            }
        }
        assert!(bodies[0].starts_with("OK REC "), "{}", bodies[0]);
        assert!(bodies[1].starts_with("OK REC "), "{}", bodies[1]);
        assert!(bodies[2].starts_with("OK EPOCH "), "{}", bodies[2]);

        server.shutdown();
    }

    #[test]
    fn malformed_request_answers_400_and_closes() {
        let svc = tiny_service(64);
        let server = HttpServer::start(svc, "127.0.0.1:0", HttpConfig::default()).expect("start");
        let mut c = TcpStream::connect(server.local_addr()).expect("connect");
        c.write_all(b"NOT A REQUEST\r\n\r\n").expect("write");
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).expect("read to close");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        assert!(text.contains("ERR "), "{text}");
        server.shutdown();
    }
}
