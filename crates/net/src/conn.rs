//! Per-connection state machine.
//!
//! Each accepted socket owns a `Conn`: an edge-triggered read
//! buffer, a FIFO of response `Slot`s, and an edge-triggered write
//! buffer. The FIFO is what makes HTTP/1.1 pipelining correct —
//! responses leave in request-arrival order, so a control request
//! parked behind an in-flight `GET /rec` waits for that ticket to
//! resolve before its (already rendered) bytes ship.
//!
//! Backpressure: a connection with more than
//! [`crate::HttpConfig::max_pipeline`] unanswered requests stops
//! reading (edge-triggered epoll loses nothing — the event loop
//! retries paused connections on every tick), and a read buffer is
//! never allowed to grow past the parser's own hard limits plus one
//! maximal request body.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use fui_service::Ticket;

use crate::http;
use crate::server::NetMetrics;

/// Ceiling on buffered-but-unparsed request bytes per connection; one
/// maximal head section plus one maximal body, so any single valid
/// request always fits.
const MAX_READ_BUF: usize = http::MAX_REQUEST_LINE + http::MAX_HEADER_BYTES + http::MAX_BODY;

/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// One response owed to the peer, in request-arrival order.
pub(crate) enum Slot {
    /// Rendered and ready to ship.
    Done(Vec<u8>),
    /// A submitted `GET /rec` whose ticket the event loop polls.
    Waiting(PendingRec),
}

/// Book-keeping for an in-flight recommendation request.
pub(crate) struct PendingRec {
    /// The batcher ticket (always `Some`; `Option` so resolution can
    /// move it out without juggling the queue).
    pub(crate) ticket: Option<Ticket>,
    /// Whether the request asked to keep the connection alive.
    pub(crate) keep_alive: bool,
    /// The server's stall stamp at submission; a different stamp at
    /// shed-resolution time means a rotation/refresh overlapped the
    /// request, which answers `503` instead of `429`.
    pub(crate) stall_stamp: u64,
    /// Submission instant (diagnostic only).
    #[allow(dead_code)]
    pub(crate) submitted_at: Instant,
}

/// What a read pass learned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// Drained to `WouldBlock` (or paused); connection healthy.
    Open,
    /// Peer closed its write half (EOF).
    Eof,
    /// Hard I/O error; drop the connection.
    Err,
}

/// One accepted connection.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Responses owed, FIFO.
    pub(crate) slots: VecDeque<Slot>,
    /// Stop reading/parsing; close once every owed byte is flushed.
    pub(crate) closing: bool,
    /// Drop now (I/O error, hangup, or graceful close completed).
    pub(crate) dead: bool,
    /// Requests parsed on this connection (keep-alive reuse = all but
    /// the first).
    pub(crate) requests: u64,
    /// Peer EOF seen; no more requests will arrive.
    eof: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            slots: VecDeque::new(),
            closing: false,
            dead: false,
            requests: 0,
            eof: false,
        }
    }

    /// Whether any owed response is still waiting on a ticket.
    pub(crate) fn has_waiting(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Waiting(_)))
    }

    /// Whether the pipeline is full enough to pause reads.
    pub(crate) fn paused(&self, max_pipeline: usize) -> bool {
        self.slots.len() >= max_pipeline || self.read_buf.len() >= MAX_READ_BUF
    }

    /// Unparsed buffered bytes (nonzero at EOF means a truncated
    /// request).
    pub(crate) fn unparsed(&self) -> usize {
        self.read_buf.len()
    }

    /// Whether EOF has been observed.
    pub(crate) fn saw_eof(&self) -> bool {
        self.eof
    }

    /// Edge-triggered read pass: drain the socket to `WouldBlock`,
    /// EOF, or the backpressure ceiling.
    pub(crate) fn fill(&mut self, metrics: &NetMetrics, max_pipeline: usize) -> ReadOutcome {
        if self.closing || self.eof {
            return if self.eof {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Open
            };
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if self.paused(max_pipeline) {
                // Deliberately leave the socket undrained; the event
                // loop retries once the pipeline shrinks.
                return ReadOutcome::Open;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return ReadOutcome::Eof;
                }
                Ok(n) => {
                    metrics.read_bytes.add(n as u64);
                    self.read_buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Err,
            }
        }
    }

    /// Parses as many complete pipelined requests as the buffer
    /// holds, handing each to `route`. `route` returns the slot owed
    /// for that request plus whether the connection must close after
    /// it (parse errors close via [`Conn::fail_request`] instead).
    pub(crate) fn parse_requests<F>(&mut self, metrics: &NetMetrics, mut route: F)
    where
        F: FnMut(&http::HttpRequest) -> Slot,
    {
        while !self.closing {
            match http::parse_request(&self.read_buf) {
                Ok(None) => break,
                Ok(Some((req, consumed))) => {
                    self.read_buf.drain(..consumed);
                    self.requests += 1;
                    metrics.requests.incr();
                    if self.requests > 1 {
                        metrics.keepalive_reuse.incr();
                    }
                    let close_after = !req.keep_alive;
                    self.slots.push_back(route(&req));
                    if close_after {
                        self.closing = true;
                        self.read_buf.clear();
                    }
                }
                Err(e) => {
                    self.fail_request(metrics, &e);
                    break;
                }
            }
        }
    }

    /// Answers `400` for a malformed request and begins a graceful
    /// close (the owed responses ahead of it still ship first).
    pub(crate) fn fail_request(&mut self, metrics: &NetMetrics, err: &http::HttpError) {
        metrics.parse_errors.incr();
        metrics.status_bad_request.incr();
        let mut bytes = Vec::new();
        http::write_response(&mut bytes, 400, &format!("ERR {err}\n"), false);
        self.slots.push_back(Slot::Done(bytes));
        self.closing = true;
        self.read_buf.clear();
    }

    /// Moves every leading `Done` slot into the write buffer and
    /// flushes to `WouldBlock`. Marks the connection dead once a
    /// closing connection has shipped everything it owes.
    pub(crate) fn flush(&mut self, metrics: &NetMetrics) {
        while let Some(Slot::Done(_)) = self.slots.front() {
            let Some(Slot::Done(bytes)) = self.slots.pop_front() else {
                unreachable!("front checked above");
            };
            self.write_buf.extend_from_slice(&bytes);
        }
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    metrics.write_bytes.add(n as u64);
                    self.written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
            if self.slots.is_empty() && (self.closing || self.eof) {
                self.dead = true;
            }
        }
    }
}
