//! **fui-load** — the open-loop load harness.
//!
//! The closed-loop cells (`serve_micro`, `shard_micro`) submit, pump,
//! redeem, repeat: the generator waits for the system, so queueing
//! collapse is invisible — offered load can never exceed completion
//! rate. This crate generates **open-loop** traffic: every request
//! has a scheduled arrival instant derived from the seed *before the
//! run starts*, and is sent at that instant whether or not earlier
//! requests have answered. Under overload the queue actually builds,
//! admission control actually sheds, and the p99/p999 the report
//! prints are the numbers a user would see — this harness is what
//! makes every latency claim in the repo honest.
//!
//! * [`schedule`] — the deterministic workload: per-phase Poisson
//!   arrivals (uniform order statistics given an integer-exact
//!   per-phase count, so `submitted` is identical across platforms
//!   and thread widths), hot-key Zipf user skew, diurnal ramps and a
//!   flash-crowd overload phase, with follow/unfollow churn and
//!   rotate/refresh control operations embedded on fixed cadences;
//! * [`client`] — the driver: keep-alive connections with pipelined
//!   writes (arrivals are *not* gated on responses), one writer and
//!   one reader thread per connection, speaking either the `fui-net`
//!   HTTP frontend or the `fui-service` line protocol;
//! * [`report`] — exact percentiles (p50/p99/p999 from the full
//!   sorted sample set, not histogram buckets), shed-rate and
//!   per-phase goodput, including goodput-under-overload for the
//!   flash phase.

#![warn(missing_docs)]

pub mod client;
pub mod report;
pub mod schedule;

pub use client::{drive, ClientConfig, Protocol};
pub use report::{percentile_ns, Class, LoadReport, PhaseReport};
pub use schedule::{build_schedule, Arrival, Op, Phase, Schedule, WorkloadSpec};
