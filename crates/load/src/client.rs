//! The open-loop driver.
//!
//! Arrivals are partitioned round-robin across keep-alive
//! connections; each connection runs one **writer** thread (sleeps
//! until the scheduled instant, then sends — never waiting for a
//! response, so offered load is independent of completion rate) and
//! one **reader** thread (drains responses in FIFO order, which is
//! exactly the order the server guarantees under pipelining). The
//! writer hands the reader `(send_instant, phase)` over a channel
//! *before* writing the request bytes, so every response can be
//! matched and timed without any in-band tagging.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use crate::report::{Class, LoadReport, Sample};
use crate::schedule::{Arrival, Op, Schedule};
use fui_net::{parse_response, HttpResponse};

/// Which frontend the driver speaks to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The `fui-net` event-loop HTTP/1.1 frontend.
    Http,
    /// The `fui-service` line protocol.
    Line,
}

/// Driver knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Wire protocol.
    pub protocol: Protocol,
    /// Reader patience after the last send; a response slower than
    /// this counts as **lost** (and fails the zero-lost gate).
    pub drain_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connections: 8,
            protocol: Protocol::Http,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Renders one operation as HTTP/1.1 request bytes.
fn render_http(op: &Op, out: &mut Vec<u8>) {
    match op {
        Op::Rec { user, topic, top_n } => out.extend_from_slice(
            format!("GET /rec?user={user}&topic={topic}&top_n={top_n} HTTP/1.1\r\n\r\n")
                .as_bytes(),
        ),
        Op::Follow {
            follower,
            followee,
            topics,
        } => out.extend_from_slice(
            format!(
                "POST /follow?follower={follower}&followee={followee}&topics={topics} HTTP/1.1\r\n\r\n"
            )
            .as_bytes(),
        ),
        Op::Unfollow { follower, followee } => out.extend_from_slice(
            format!("POST /unfollow?follower={follower}&followee={followee} HTTP/1.1\r\n\r\n")
                .as_bytes(),
        ),
        Op::Rotate => out.extend_from_slice(b"POST /rotate HTTP/1.1\r\n\r\n"),
        Op::Refresh => out.extend_from_slice(b"POST /refresh HTTP/1.1\r\n\r\n"),
    }
}

/// Renders one operation as a line-protocol command.
fn render_line(op: &Op, out: &mut Vec<u8>) {
    match op {
        Op::Rec { user, topic, top_n } => {
            out.extend_from_slice(format!("REC {user} {topic} {top_n}\n").as_bytes())
        }
        Op::Follow {
            follower,
            followee,
            topics,
        } => out.extend_from_slice(format!("FOLLOW {follower} {followee} {topics}\n").as_bytes()),
        Op::Unfollow { follower, followee } => {
            out.extend_from_slice(format!("UNFOLLOW {follower} {followee}\n").as_bytes())
        }
        Op::Rotate => out.extend_from_slice(b"ROTATE\n"),
        Op::Refresh => out.extend_from_slice(b"REFRESH\n"),
    }
}

/// Classifies an HTTP response.
fn classify_http(resp: &HttpResponse) -> Class {
    match resp.status {
        200 => Class::Ok,
        429 => Class::Shed,
        503 => Class::ShedStall,
        _ => Class::Rejected,
    }
}

/// Classifies a line-protocol reply line.
fn classify_line(line: &str) -> Class {
    if line.starts_with("OVERLOADED") {
        Class::Shed
    } else if line.starts_with("ERR") {
        Class::Rejected
    } else {
        Class::Ok
    }
}

/// What one connection's reader hands back.
struct ConnOutcome {
    samples: Vec<Sample>,
    lost: u64,
}

/// Reads until `expected` responses have been matched against the
/// metadata channel, or patience runs out.
fn read_responses(
    mut stream: TcpStream,
    protocol: Protocol,
    expected: usize,
    meta_rx: mpsc::Receiver<(Instant, usize)>,
    drain_timeout: Duration,
) -> ConnOutcome {
    stream
        .set_read_timeout(Some(drain_timeout))
        .expect("set_read_timeout");
    let mut samples = Vec::with_capacity(expected);
    let mut buf: Vec<u8> = Vec::new();
    let mut consumed = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    'outer: while samples.len() < expected {
        // Drain every complete response already buffered.
        loop {
            let class = match protocol {
                Protocol::Http => match parse_response(&buf[consumed..]) {
                    Ok(Some((resp, used))) => {
                        consumed += used;
                        classify_http(&resp)
                    }
                    Ok(None) => break,
                    Err(e) => panic!("malformed http response from server: {e}"),
                },
                Protocol::Line => match buf[consumed..].iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        let line =
                            String::from_utf8_lossy(&buf[consumed..consumed + nl]).into_owned();
                        consumed += nl + 1;
                        classify_line(&line)
                    }
                    None => break,
                },
            };
            let (sent_at, phase) = meta_rx.recv().expect("writer sends metadata before bytes");
            samples.push(Sample {
                phase,
                class,
                latency_ns: sent_at.elapsed().as_nanos() as u64,
            });
            if samples.len() == expected {
                break 'outer;
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
            consumed = 0;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // server closed; remainder is lost
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("read error: {e}"),
        }
    }
    ConnOutcome {
        lost: (expected - samples.len()) as u64,
        samples,
    }
}

/// Sends every assigned arrival at its scheduled instant. Returns
/// per-send lag (actual − scheduled), nanoseconds.
fn write_requests(
    mut stream: TcpStream,
    protocol: Protocol,
    arrivals: Vec<Arrival>,
    start: Instant,
    meta_tx: mpsc::Sender<(Instant, usize)>,
) -> Vec<u64> {
    let mut lags = Vec::with_capacity(arrivals.len());
    let mut bytes = Vec::with_capacity(256);
    for a in arrivals {
        let target = start + Duration::from_nanos(a.at_ns);
        let now = Instant::now();
        if target > now {
            thread::sleep(target - now);
        }
        bytes.clear();
        match protocol {
            Protocol::Http => render_http(&a.op, &mut bytes),
            Protocol::Line => render_line(&a.op, &mut bytes),
        }
        let sent_at = Instant::now();
        lags.push(sent_at.saturating_duration_since(target).as_nanos() as u64);
        // Metadata first, bytes second: the response (and thus the
        // reader's recv) can only happen after this write lands.
        meta_tx.send((sent_at, a.phase)).expect("reader alive");
        stream.write_all(&bytes).expect("request write");
    }
    stream.flush().expect("flush");
    lags
}

/// Drives the schedule against `addr` and reports what happened.
///
/// Every arrival is sent at its precomputed instant regardless of
/// response progress (open loop); the report's `lost` field is the
/// number of requests still unanswered `drain_timeout` after their
/// send — the bench gate requires it to be zero.
pub fn drive(addr: SocketAddr, cfg: &ClientConfig, schedule: &Schedule) -> LoadReport {
    assert!(cfg.connections >= 1, "need at least one connection");
    let conns = cfg.connections;
    let mut per_conn: Vec<Vec<Arrival>> = (0..conns).map(|_| Vec::new()).collect();
    for (i, a) in schedule.arrivals.iter().enumerate() {
        per_conn[i % conns].push(a.clone());
    }

    let wall_start = Instant::now();
    // Small grace so every thread is parked before the first arrival.
    let start = wall_start + Duration::from_millis(20);
    let mut writer_handles = Vec::with_capacity(conns);
    let mut reader_handles = Vec::with_capacity(conns);
    for assigned in per_conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader_stream = stream.try_clone().expect("clone stream");
        let (meta_tx, meta_rx) = mpsc::channel();
        let expected = assigned.len();
        let protocol = cfg.protocol;
        let drain = cfg.drain_timeout;
        reader_handles.push(
            thread::Builder::new()
                .name("fui-load-read".into())
                .spawn(move || read_responses(reader_stream, protocol, expected, meta_rx, drain))
                .expect("spawn reader"),
        );
        writer_handles.push(
            thread::Builder::new()
                .name("fui-load-write".into())
                .spawn(move || write_requests(stream, protocol, assigned, start, meta_tx))
                .expect("spawn writer"),
        );
    }

    let mut send_lags = Vec::new();
    for h in writer_handles {
        send_lags.extend(h.join().expect("writer thread"));
    }
    let mut samples = Vec::new();
    let mut lost = 0u64;
    for h in reader_handles {
        let outcome = h.join().expect("reader thread");
        samples.extend(outcome.samples);
        lost += outcome.lost;
    }
    let wall = wall_start.elapsed();

    let phase_meta: Vec<(&'static str, bool, f64)> = schedule
        .phases
        .iter()
        .map(|p| (p.name, p.overload, p.secs))
        .collect();
    LoadReport::from_samples(samples, &phase_meta, send_lags, lost, wall)
}
