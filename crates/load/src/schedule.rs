//! Deterministic open-loop workload schedules.
//!
//! A [`WorkloadSpec`] compiles to a [`Schedule`]: every arrival's
//! instant, operation and phase fixed before the run starts, derived
//! entirely from the seed via the testkit RNG. Two properties matter
//! for the CI gate:
//!
//! * **Integer-exact counts.** Each phase contributes exactly
//!   `round(mean_rate × duration)` arrivals — no floating-point
//!   accumulation, no library-`ln` in the count path — so
//!   `load_micro.submitted` (and the per-kind query/change/rotate
//!   splits) are equality-gated across runs, platforms and
//!   `FUI_THREADS` widths.
//! * **Poisson shape.** Given the count, arrival instants are drawn
//!   as uniform order statistics over the phase window (for ramps,
//!   the inverse CDF of the linear rate profile — only `sqrt`, which
//!   IEEE 754 rounds exactly) — which is precisely a conditioned
//!   Poisson process, burstiness included.
//!
//! User skew is Zipf over a seeded permutation of the id space, so
//! the hot keys are scattered across shards/cache lines rather than
//! clustered at id 0.

use fui_taxonomy::Topic;
use fui_testkit::rng::SeededRng;

/// One workload phase: a linear rate ramp over a fixed window.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Display name (`ramp`, `steady`, `flash`, ...).
    pub name: &'static str,
    /// Window length, seconds.
    pub secs: f64,
    /// Arrival rate at the window start, requests/second.
    pub rate_start: f64,
    /// Arrival rate at the window end, requests/second.
    pub rate_end: f64,
    /// Marks the deliberate-overload phase whose goodput the gate
    /// floors.
    pub overload: bool,
}

/// The full workload description.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Master seed; everything below derives from it.
    pub seed: u64,
    /// Phases, driven in order.
    pub phases: Vec<Phase>,
    /// User-id space `[0, users)`; requests stay in range.
    pub users: u32,
    /// Zipf skew exponent (1.0 ≈ classic web skew; 0 = uniform).
    pub zipf_s: f64,
    /// How many of [`Topic::ALL`] the queries draw from.
    pub topics: usize,
    /// Recommendations requested per query.
    pub top_n: usize,
    /// Fraction of arrivals that are follow/unfollow churn.
    pub change_frac: f64,
    /// A snapshot rotation rides the schedule at this cadence,
    /// seconds (0 = never).
    pub rotate_every_s: f64,
    /// A landmark refresh rides the schedule at this cadence,
    /// seconds (0 = never).
    pub refresh_every_s: f64,
}

/// One scheduled operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `GET /rec` / `REC`.
    Rec {
        /// Querying user.
        user: u32,
        /// Topic name (from [`Topic::ALL`]).
        topic: &'static str,
        /// Recommendations requested.
        top_n: usize,
    },
    /// `POST /follow` / `FOLLOW`.
    Follow {
        /// Follower id.
        follower: u32,
        /// Followee id.
        followee: u32,
        /// Comma-separated topic labels.
        topics: String,
    },
    /// `POST /unfollow` / `UNFOLLOW`.
    Unfollow {
        /// Follower id.
        follower: u32,
        /// Followee id.
        followee: u32,
    },
    /// `POST /rotate` / `ROTATE`.
    Rotate,
    /// `POST /refresh` / `REFRESH`.
    Refresh,
}

/// One arrival: when, what, and which phase it belongs to.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Offset from run start, nanoseconds.
    pub at_ns: u64,
    /// Index into [`Schedule::phases`].
    pub phase: usize,
    /// The operation.
    pub op: Op,
}

/// A compiled schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Every arrival, sorted by instant.
    pub arrivals: Vec<Arrival>,
    /// The phases the arrivals reference.
    pub phases: Vec<Phase>,
    /// Total scheduled duration, nanoseconds.
    pub horizon_ns: u64,
}

/// Exact per-kind totals (equality-gated in CI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `Rec` arrivals.
    pub queries: u64,
    /// `Follow` + `Unfollow` arrivals.
    pub changes: u64,
    /// `Rotate` arrivals.
    pub rotates: u64,
    /// `Refresh` arrivals.
    pub refreshes: u64,
}

impl Schedule {
    /// Total arrivals.
    pub fn submitted(&self) -> u64 {
        self.arrivals.len() as u64
    }

    /// Exact per-kind totals.
    pub fn counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for a in &self.arrivals {
            match a.op {
                Op::Rec { .. } => c.queries += 1,
                Op::Follow { .. } | Op::Unfollow { .. } => c.changes += 1,
                Op::Rotate => c.rotates += 1,
                Op::Refresh => c.refreshes += 1,
            }
        }
        c
    }
}

/// Zipf sampler over a seeded permutation of `[0, n)`.
struct ZipfUsers {
    cdf: Vec<f64>,
    perm: Vec<u32>,
}

impl ZipfUsers {
    fn new(n: u32, s: f64, rng: &mut SeededRng) -> ZipfUsers {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n as u64 {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        // Fisher–Yates permutation so hot ranks land on scattered ids.
        let mut perm: Vec<u32> = (0..n).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        ZipfUsers { cdf, perm }
    }

    fn sample(&self, rng: &mut SeededRng) -> u32 {
        let total = *self.cdf.last().expect("nonempty cdf");
        let u = rng.f64() * total;
        let rank = self.cdf.partition_point(|&c| c < u);
        self.perm[rank.min(self.perm.len() - 1)]
    }
}

/// Inverse CDF of a linear rate profile `a → b` over `[0, horizon]`:
/// maps uniform `u ∈ [0,1)` to an arrival offset with density
/// proportional to the instantaneous rate. Exact for `a == b`
/// (uniform) and uses only `sqrt` otherwise.
fn ramp_inverse(u: f64, a: f64, b: f64, horizon: f64) -> f64 {
    if (a - b).abs() < 1e-12 {
        return u * horizon;
    }
    let c = (b - a) / (2.0 * horizon);
    let mass = a * horizon + c * horizon * horizon;
    let rhs = u * mass;
    let disc = a * a + 4.0 * c * rhs;
    // The `-a + sqrt` root is the one inside [0, horizon] for both
    // rising (c > 0) and decaying (c < 0) ramps.
    let t = (-a + disc.max(0.0).sqrt()) / (2.0 * c);
    t.clamp(0.0, horizon)
}

/// Compiles a spec into its schedule. Pure function of the spec.
pub fn build_schedule(spec: &WorkloadSpec) -> Schedule {
    assert!(spec.users > 1, "need at least two users for churn");
    assert!(spec.topics >= 1 && spec.topics <= Topic::ALL.len());
    let mut rng = SeededRng::new(spec.seed ^ 0x10AD_CAFE);
    let zipf = ZipfUsers::new(spec.users, spec.zipf_s, &mut rng);

    // Pass 1: integer-exact arrival instants per phase.
    let mut instants: Vec<(u64, usize)> = Vec::new();
    let mut phase_start = 0.0f64;
    for (pi, ph) in spec.phases.iter().enumerate() {
        let mean_rate = 0.5 * (ph.rate_start + ph.rate_end);
        let count = (mean_rate * ph.secs).round() as u64;
        for _ in 0..count {
            let t = ramp_inverse(rng.f64(), ph.rate_start, ph.rate_end, ph.secs);
            let at_ns = ((phase_start + t) * 1e9) as u64;
            instants.push((at_ns, pi));
        }
        phase_start += ph.secs;
    }
    instants.sort_unstable();
    let horizon_ns = (phase_start * 1e9) as u64;

    // Pass 2: operations. Control cadences consume arrivals in
    // place (the op mix stays a function of the seed alone).
    let mut arrivals = Vec::with_capacity(instants.len());
    let mut next_rotate = spec.rotate_every_s;
    let mut next_refresh = spec.refresh_every_s;
    let topics = &Topic::ALL[..spec.topics];
    for (at_ns, phase) in instants {
        let t_s = at_ns as f64 / 1e9;
        let op = if spec.rotate_every_s > 0.0 && t_s >= next_rotate {
            next_rotate += spec.rotate_every_s;
            Op::Rotate
        } else if spec.refresh_every_s > 0.0 && t_s >= next_refresh {
            next_refresh += spec.refresh_every_s;
            Op::Refresh
        } else if rng.chance(spec.change_frac) {
            let follower = zipf.sample(&mut rng);
            let followee =
                (follower + 1 + rng.below(u64::from(spec.users) - 1) as u32) % spec.users;
            if rng.chance(0.25) {
                Op::Unfollow { follower, followee }
            } else {
                let mut names = String::from(rng.pick(topics).name());
                if rng.chance(0.3) {
                    names.push(',');
                    names.push_str(rng.pick(topics).name());
                }
                Op::Follow {
                    follower,
                    followee,
                    topics: names,
                }
            }
        } else {
            Op::Rec {
                user: zipf.sample(&mut rng),
                topic: rng.pick(topics).name(),
                top_n: if rng.chance(0.2) { 5 } else { spec.top_n },
            }
        };
        arrivals.push(Arrival { at_ns, phase, op });
    }

    Schedule {
        arrivals,
        phases: spec.phases.clone(),
        horizon_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            seed: 0xEDB7,
            phases: vec![
                Phase {
                    name: "ramp",
                    secs: 1.0,
                    rate_start: 0.0,
                    rate_end: 1000.0,
                    overload: false,
                },
                Phase {
                    name: "flash",
                    secs: 0.5,
                    rate_start: 4000.0,
                    rate_end: 4000.0,
                    overload: true,
                },
            ],
            users: 500,
            zipf_s: 1.1,
            topics: 6,
            top_n: 10,
            change_frac: 0.05,
            rotate_every_s: 0.4,
            refresh_every_s: 0.7,
        }
    }

    #[test]
    fn counts_are_integer_exact() {
        let s = build_schedule(&spec());
        // round(500 * 1.0) + round(4000 * 0.5)
        assert_eq!(s.submitted(), 500 + 2000);
        let c = s.counts();
        assert_eq!(
            c.queries + c.changes + c.rotates + c.refreshes,
            s.submitted()
        );
        assert!(c.rotates >= 2, "rotate cadence must fire: {c:?}");
        assert!(c.refreshes >= 1, "refresh cadence must fire: {c:?}");
        assert!(c.changes > 0 && c.queries > c.changes);
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = build_schedule(&spec());
        let b = build_schedule(&spec());
        assert_eq!(a.submitted(), b.submitted());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.op, y.op);
        }
        assert!(a.arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.arrivals.last().expect("nonempty").at_ns <= a.horizon_ns);
    }

    #[test]
    fn zipf_concentrates_mass_on_few_users() {
        let s = build_schedule(&spec());
        let mut hits = std::collections::HashMap::new();
        let mut queries = 0u64;
        for a in &s.arrivals {
            if let Op::Rec { user, .. } = a.op {
                *hits.entry(user).or_insert(0u64) += 1;
                queries += 1;
            }
        }
        let mut tallies: Vec<u64> = hits.values().copied().collect();
        tallies.sort_unstable_by(|x, y| y.cmp(x));
        let top10: u64 = tallies.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.3 * queries as f64,
            "zipf skew too flat: top10={top10} of {queries}"
        );
    }
}
