//! Exact-percentile load reports.
//!
//! The obs histograms are log-bucketed (≤ 25 % relative error) and
//! stop at p99; tail claims need better. The client keeps every raw
//! latency sample in nanoseconds and this module computes
//! nearest-rank percentiles from the full sorted set — p999 here is
//! the 0.999 order statistic, not a bucket midpoint.

use std::time::Duration;

/// How a request resolved, as observed by the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// `200` / `OK ...` — answered with a result.
    Ok,
    /// `429` / `OVERLOADED` — shed by admission control.
    Shed,
    /// `503` — shed across a rotation/refresh stall (HTTP only; the
    /// line protocol folds these into [`Class::Shed`]).
    ShedStall,
    /// `4xx` / `ERR ...` — rejected as invalid.
    Rejected,
}

/// One completed request.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Phase index the arrival was scheduled in.
    pub phase: usize,
    /// Outcome class.
    pub class: Class,
    /// Send-to-response latency, nanoseconds.
    pub latency_ns: u64,
}

/// Nearest-rank percentile over a **sorted** slice; `q` in `[0, 1]`.
pub fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-phase accounting.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name.
    pub name: &'static str,
    /// Whether this was the designated overload phase.
    pub overload: bool,
    /// Scheduled window length, seconds.
    pub secs: f64,
    /// Requests scheduled into the phase.
    pub submitted: u64,
    /// Answered with a result.
    pub answered: u64,
    /// Shed (both causes).
    pub shed: u64,
    /// Rejected as invalid.
    pub rejected: u64,
    /// Answered ÷ window — goodput, requests/second.
    pub goodput_rps: f64,
    /// p99 latency inside the phase, nanoseconds.
    pub p99_ns: u64,
}

/// The harness verdict for one drive.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests submitted (== the schedule length when nothing is
    /// lost).
    pub submitted: u64,
    /// Answered with a result.
    pub answered: u64,
    /// Shed total (429 + 503 + line-protocol `OVERLOADED`).
    pub shed: u64,
    /// Sheds attributed to admission control (`429`).
    pub shed_429: u64,
    /// Sheds attributed to rotation stalls (`503`).
    pub shed_503: u64,
    /// Rejected as invalid (`ERR` / `4xx`).
    pub rejected: u64,
    /// Requests that never received a response (must be zero).
    pub lost: u64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// p99 latency, nanoseconds.
    pub p99_ns: u64,
    /// p999 latency, nanoseconds.
    pub p999_ns: u64,
    /// Worst observed latency, nanoseconds.
    pub max_ns: u64,
    /// p99 of (actual − scheduled) send instant: how honestly
    /// open-loop the writers stayed, nanoseconds.
    pub send_lag_p99_ns: u64,
    /// Wall time of the whole drive, seconds.
    pub wall_s: f64,
    /// Answered ÷ wall, requests/second.
    pub goodput_rps: f64,
    /// Goodput of the designated overload phase (0 when no phase is
    /// marked), requests/second.
    pub overload_goodput_rps: f64,
    /// Shed ÷ submitted.
    pub shed_rate: f64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
}

impl LoadReport {
    /// Builds the report from raw samples.
    ///
    /// `phase_meta` is `(name, overload, secs)` per phase in schedule
    /// order; `lost` counts scheduled requests that never answered.
    pub fn from_samples(
        mut samples: Vec<Sample>,
        phase_meta: &[(&'static str, bool, f64)],
        send_lags_ns: Vec<u64>,
        lost: u64,
        wall: Duration,
    ) -> LoadReport {
        let mut answered = 0u64;
        let mut shed_429 = 0u64;
        let mut shed_503 = 0u64;
        let mut rejected = 0u64;
        let mut phases: Vec<PhaseReport> = phase_meta
            .iter()
            .map(|&(name, overload, secs)| PhaseReport {
                name,
                overload,
                secs,
                submitted: 0,
                answered: 0,
                shed: 0,
                rejected: 0,
                goodput_rps: 0.0,
                p99_ns: 0,
            })
            .collect();
        let mut per_phase_lat: Vec<Vec<u64>> = vec![Vec::new(); phase_meta.len()];
        for s in &samples {
            let p = &mut phases[s.phase];
            p.submitted += 1;
            per_phase_lat[s.phase].push(s.latency_ns);
            match s.class {
                Class::Ok => {
                    answered += 1;
                    p.answered += 1;
                }
                Class::Shed => {
                    shed_429 += 1;
                    p.shed += 1;
                }
                Class::ShedStall => {
                    shed_503 += 1;
                    p.shed += 1;
                }
                Class::Rejected => {
                    rejected += 1;
                    p.rejected += 1;
                }
            }
        }
        for (p, mut lats) in phases.iter_mut().zip(per_phase_lat) {
            lats.sort_unstable();
            p.p99_ns = percentile_ns(&lats, 0.99);
            p.goodput_rps = p.answered as f64 / p.secs.max(1e-9);
        }
        let overload_goodput_rps = phases
            .iter()
            .filter(|p| p.overload)
            .map(|p| p.goodput_rps)
            .fold(0.0, f64::max);

        samples.sort_unstable_by_key(|s| s.latency_ns);
        let lats: Vec<u64> = samples.iter().map(|s| s.latency_ns).collect();
        let mut lags = send_lags_ns;
        lags.sort_unstable();

        let submitted = lats.len() as u64 + lost;
        let shed = shed_429 + shed_503;
        let wall_s = wall.as_secs_f64();
        LoadReport {
            submitted,
            answered,
            shed,
            shed_429,
            shed_503,
            rejected,
            lost,
            p50_ns: percentile_ns(&lats, 0.50),
            p99_ns: percentile_ns(&lats, 0.99),
            p999_ns: percentile_ns(&lats, 0.999),
            max_ns: lats.last().copied().unwrap_or(0),
            send_lag_p99_ns: percentile_ns(&lags, 0.99),
            wall_s,
            goodput_rps: answered as f64 / wall_s.max(1e-9),
            overload_goodput_rps,
            shed_rate: shed as f64 / (submitted.max(1)) as f64,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_ns(&v, 0.50), 500);
        assert_eq!(percentile_ns(&v, 0.99), 990);
        assert_eq!(percentile_ns(&v, 0.999), 999);
        assert_eq!(percentile_ns(&v, 1.0), 1000);
        assert_eq!(percentile_ns(&[], 0.99), 0);
        assert_eq!(percentile_ns(&[42], 0.001), 42);
    }

    #[test]
    fn report_partitions_outcomes() {
        let meta = [("a", false, 1.0), ("b", true, 2.0)];
        let samples = vec![
            Sample {
                phase: 0,
                class: Class::Ok,
                latency_ns: 10,
            },
            Sample {
                phase: 1,
                class: Class::Shed,
                latency_ns: 20,
            },
            Sample {
                phase: 1,
                class: Class::ShedStall,
                latency_ns: 30,
            },
            Sample {
                phase: 1,
                class: Class::Ok,
                latency_ns: 40,
            },
            Sample {
                phase: 0,
                class: Class::Rejected,
                latency_ns: 50,
            },
        ];
        let r = LoadReport::from_samples(samples, &meta, vec![1, 2, 3], 1, Duration::from_secs(2));
        assert_eq!(r.submitted, 6);
        assert_eq!(r.answered, 2);
        assert_eq!(r.shed, 2);
        assert_eq!(r.shed_429, 1);
        assert_eq!(r.shed_503, 1);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.lost, 1);
        assert_eq!(r.answered + r.shed + r.rejected + r.lost, r.submitted);
        assert_eq!(r.max_ns, 50);
        assert!((r.phases[1].goodput_rps - 0.5).abs() < 1e-9);
        assert!((r.overload_goodput_rps - 0.5).abs() < 1e-9);
        assert!((r.shed_rate - 2.0 / 6.0).abs() < 1e-9);
    }
}
